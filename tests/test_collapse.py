"""Tests for structural fault collapsing."""

import random

from repro.circuits.benchmarks import get_circuit
from repro.circuits.netlist import Circuit
from repro.faults.collapse import (
    collapse_stuck_at,
    collapse_transition,
    collapsed_transition_faults,
    stuck_at_equivalence_classes,
    transition_equivalence_classes,
)
from repro.faults.lists import all_stuck_at_faults, all_transition_faults
from repro.faults.models import FALL, RISE, StuckAtFault, TransitionFault


def inverter_chain():
    c = Circuit(name="chain")
    c.add_input("a")
    c.add_gate("b", "NOT", ["a"])
    c.add_gate("cc", "NOT", ["b"])
    c.add_output("cc")
    c.validate()
    return c


def and_gate():
    c = Circuit(name="andg")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("o", "AND", ["a", "b"])
    c.add_output("o")
    c.validate()
    return c


class TestEquivalence:
    def test_inverter_chain_collapses_to_two(self):
        c = inverter_chain()
        collapsed = collapse_stuck_at(c, all_stuck_at_faults(c))
        assert len(collapsed) == 2  # 6 raw faults -> one pair

    def test_not_polarity_swap(self):
        c = inverter_chain()
        classes = stuck_at_equivalence_classes(c)
        assert classes[("a", 0)] == classes[("b", 1)]
        assert classes[("a", 1)] == classes[("b", 0)]

    def test_and_controlling_merge(self):
        c = and_gate()
        classes = stuck_at_equivalence_classes(c)
        # input s-a-0 == output s-a-0 for an AND gate
        assert classes[("a", 0)] == classes[("o", 0)]
        assert classes[("b", 0)] == classes[("o", 0)]
        # s-a-1 faults stay distinct
        assert classes[("a", 1)] != classes[("o", 1)]

    def test_fanout_stems_not_merged(self):
        c = Circuit(name="stem")
        c.add_input("a")
        c.add_gate("x", "NOT", ["a"])
        c.add_gate("y", "NOT", ["a"])
        c.add_output("x")
        c.add_output("y")
        c.validate()
        classes = stuck_at_equivalence_classes(c)
        assert classes[("a", 0)] != classes[("x", 1)]


class TestTransitionCollapse:
    def test_polarity_mapping(self):
        c = inverter_chain()
        collapsed = collapse_transition(c, all_transition_faults(c))
        assert len(collapsed) == 2
        directions = {f.direction for f in collapsed}
        assert directions == {RISE, FALL}

    def test_collapsed_faults_detection_equivalent(self):
        """Equivalent transition faults have identical detection words."""
        from repro.faults.fsim import TransitionFaultSimulator
        from repro.logic.simulator import make_broadside_test

        c = get_circuit("s27")
        rng = random.Random(4)
        tests = [
            make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            for _ in range(64)
        ]
        from repro.faults.collapse import transition_equivalence_classes

        classes = transition_equivalence_classes(c)
        groups: dict[tuple, list[TransitionFault]] = {}
        for f in all_transition_faults(c):
            groups.setdefault(classes[(f.line, f.stuck_value)], []).append(f)
        sim = TransitionFaultSimulator(c)
        words = sim.detection_words(tests, all_transition_faults(c))
        for members in groups.values():
            first = words[members[0]]
            for other in members[1:]:
                assert words[other] == first, (members[0], other)

    def test_idempotent(self):
        c = get_circuit("s298")
        once = collapse_transition(c, all_transition_faults(c))
        twice = collapse_transition(c, once)
        assert once == twice


#: Pinned collapsed transition-fault list for s27 (34 raw faults -> 32
#: representatives; the NOT-driven pair folds onto its driver).  Any change
#: to the collapsing rules must update this golden deliberately.
S27_COLLAPSED_GOLDEN = [
    ("G14", FALL), ("G14", RISE),
    ("G1", RISE), ("G1", FALL),
    ("G2", RISE), ("G2", FALL),
    ("G3", RISE), ("G3", FALL),
    ("G5", RISE), ("G5", FALL),
    ("G6", RISE), ("G6", FALL),
    ("G7", RISE), ("G7", FALL),
    ("G12", RISE), ("G12", FALL),
    ("G13", RISE), ("G13", FALL),
    ("G8", RISE), ("G8", FALL),
    ("G16", RISE), ("G16", FALL),
    ("G15", RISE), ("G15", FALL),
    ("G9", RISE), ("G9", FALL),
    ("G11", RISE), ("G11", FALL),
    ("G10", RISE), ("G10", FALL),
    ("G17", RISE), ("G17", FALL),
]


class TestS27Golden:
    def test_pinned_collapsed_list(self):
        c = get_circuit("s27")
        got = [(f.line, f.direction) for f in collapsed_transition_faults(c)]
        assert got == S27_COLLAPSED_GOLDEN

    def test_representatives_are_subset_of_raw(self):
        c = get_circuit("s27")
        raw = set(all_transition_faults(c))
        assert set(collapsed_transition_faults(c)) <= raw

    def test_collapsed_detection_equals_uncollapsed(self):
        """Grading the collapsed list loses no detection information.

        For any test set, the detected equivalence classes computed from
        the collapsed representatives (compiled PPSFP grader) must equal
        the detected classes computed from the full raw fault list --
        collapsing is a pure work reduction, never a coverage change.
        """
        from repro.faults.fsim import TransitionFaultSimulator
        from repro.logic.simulator import make_broadside_test

        c = get_circuit("s27")
        classes = transition_equivalence_classes(c)
        raw = all_transition_faults(c)
        collapsed = collapsed_transition_faults(c)
        sim = TransitionFaultSimulator(c)
        rng = random.Random(11)
        for trial in range(5):
            tests = [
                make_broadside_test(
                    c,
                    [rng.randint(0, 1) for _ in c.flops],
                    [rng.randint(0, 1) for _ in c.inputs],
                    [rng.randint(0, 1) for _ in c.inputs],
                )
                for _ in range(1 + 8 * trial)
            ]
            det_raw = sim.detected_faults(tests, raw)
            det_col = sim.detected_faults(tests, collapsed)
            classes_raw = {classes[(f.line, f.stuck_value)] for f in det_raw}
            classes_col = {classes[(f.line, f.stuck_value)] for f in det_col}
            assert classes_col == classes_raw, f"trial {trial}"


class TestMemoization:
    def test_classes_cached_until_version_bump(self):
        c = inverter_chain()
        first = transition_equivalence_classes(c)
        assert transition_equivalence_classes(c) is first
        c.add_gate("d", "NOT", ["cc"])  # structural edit bumps the version
        assert transition_equivalence_classes(c) is not first

    def test_collapsed_list_cached_and_fresh(self):
        c = get_circuit("s344")
        first = collapsed_transition_faults(c)
        second = collapsed_transition_faults(c)
        # Same contents, but a fresh list: callers may reorder or filter.
        assert first == second
        assert first is not second
        second.pop()
        assert collapsed_transition_faults(c) == first

    def test_matches_uncached_collapse(self):
        c = get_circuit("s298")
        assert collapsed_transition_faults(c) == collapse_transition(
            c, all_transition_faults(c)
        )
