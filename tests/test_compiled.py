"""Property tests: the compiled circuit IR against the scalar reference.

The compiled kernels (`repro.core.compiled`) are the shared evaluation
core under every simulator, so they are checked here against the
pre-refactor dict-based reference (`repro.logic.reference`) on random
circuits from the generator: scalar three-valued agreement (including
X-propagation), bit-parallel agreement, fault-detection verdict agreement,
and compile-cache invalidation after netlist mutation.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.generator import GeneratorSpec, generate
from repro.core.compiled import compile_circuit
from repro.faults.fsim import TransitionFaultSimulator
from repro.faults.lists import all_transition_faults
from repro.logic.bitsim import PatternSimulator, pack_vectors
from repro.logic.reference import (
    detects_transition_reference,
    simulate_comb_reference,
    simulate_sequence_reference,
)
from repro.logic.simulator import (
    make_broadside_test,
    simulate_comb,
    simulate_sequence,
)
from repro.logic.values import X


def random_circuit(seed: int, n_inputs: int = 4, n_flops: int = 4, n_gates: int = 30):
    return generate(
        GeneratorSpec(
            name=f"cc{seed}",
            n_inputs=n_inputs,
            n_outputs=3,
            n_flops=n_flops,
            n_gates=n_gates,
            seed=seed,
        )
    )


class TestLowering:
    def test_index_space_layout(self):
        c = random_circuit(0)
        cc = compile_circuit(c)
        assert list(cc.names) == c.lines
        assert cc.n_sources == len(c.inputs) + len(c.flops)
        assert cc.num_lines == c.num_lines
        # Parallel arrays are consistent: one opcode and fanin slice per gate.
        assert len(cc.op_codes) == c.num_gates
        assert len(cc.fanin_offsets) == c.num_gates + 1
        assert cc.fanin_offsets[-1] == len(cc.fanin_indices)
        # Schedule is levelized: every fanin index precedes its gate's line.
        for g, gate in enumerate(c.topo_gates):
            out_idx = cc.n_sources + g
            lo, hi = cc.fanin_offsets[g], cc.fanin_offsets[g + 1]
            fis = cc.fanin_indices[lo:hi]
            assert len(fis) == len(gate.inputs)
            assert all(f < out_idx for f in fis)

    def test_compile_cache_reuse_and_invalidation(self):
        c = random_circuit(1)
        cc1 = compile_circuit(c)
        assert compile_circuit(c) is cc1  # memoized per version
        before = simulate_comb(c, {c.inputs[0]: 1})
        c.add_gate("extra_inv", "NOT", [c.inputs[0]])
        c.add_output("extra_inv")
        cc2 = compile_circuit(c)
        assert cc2 is not cc1  # mutation bumped the version
        assert cc2.version > cc1.version
        after = simulate_comb(c, {c.inputs[0]: 1})
        assert after["extra_inv"] == 0
        # Pre-mutation lines are unaffected.
        for line, v in before.items():
            assert after[line] == v

    def test_cone_matches_transitive_fanout(self):
        c = random_circuit(2)
        cc = compile_circuit(c)
        rng = random.Random(2)
        for line in rng.sample(c.lines, 10):
            entries, obs = cc.cone(cc.index[line])
            names = {cc.names[out] for out, _, _, _ in entries}
            assert names == c.transitive_fanout(line)
            # Observation lines outside the cone (and the line itself) are
            # never reported as reachable.
            reach = names | {line}
            assert all(cc.names[i] in reach for i in obs)


class TestScalarAgreement:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_matches_reference_with_x(self, data):
        """Compiled scalar == seed reference on all lines, X included."""
        c = random_circuit(data.draw(st.integers(0, 7)))
        assignment = {
            line: data.draw(st.sampled_from([0, 1, X]))
            for line in c.comb_input_lines
            if data.draw(st.booleans())
        }
        assert simulate_comb(c, assignment) == simulate_comb_reference(c, assignment)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_sequence_matches_reference(self, data):
        """States, per-cycle values and SWA agree with the seed loop."""
        c = random_circuit(data.draw(st.integers(0, 5)))
        length = data.draw(st.integers(1, 8))
        vectors = [
            [data.draw(st.integers(0, 1)) for _ in c.inputs] for _ in range(length)
        ]
        init = [data.draw(st.integers(0, 1)) for _ in c.flops]
        got = simulate_sequence(c, init, vectors)
        ref = simulate_sequence_reference(c, init, vectors)
        assert got.states == ref.states
        assert got.switching == ref.switching
        assert got.line_values == ref.line_values


class TestWordKernelCodegen:
    def test_generated_kernel_matches_scalar(self):
        """The exec-generated eval_words == per-bit eval_scalar."""
        c = random_circuit(3)
        cc = compile_circuit(c)
        rng = random.Random(3)
        lanes = 64
        mask = (1 << lanes) - 1
        values = cc.zero_frame()
        source_bits = [rng.getrandbits(lanes) for _ in range(cc.n_sources)]
        values[0 : cc.n_sources] = source_bits
        cc.eval_words(values, mask)
        for t in range(lanes):
            scalar = cc.zero_frame()
            scalar[0 : cc.n_sources] = [(w >> t) & 1 for w in source_bits]
            cc.eval_scalar(scalar)
            for i in range(cc.num_lines):
                assert (values[i] >> t) & 1 == scalar[i], (i, t)

    def test_kernel_built_once(self):
        c = random_circuit(4)
        cc = compile_circuit(c)
        assert cc._word_kernel is None
        cc.eval_words(cc.zero_frame(), 1)
        kernel = cc._word_kernel
        assert kernel is not None
        cc.eval_words(cc.zero_frame(), 1)
        assert cc._word_kernel is kernel


class TestBitParallelAgreement:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_words_match_scalar(self, data):
        c = random_circuit(data.draw(st.integers(0, 5)))
        n = data.draw(st.integers(1, 12))
        vectors = [
            [data.draw(st.integers(0, 1)) for _ in c.comb_input_lines]
            for _ in range(n)
        ]
        packed = PatternSimulator(c).run(
            pack_vectors(vectors, c.comb_input_lines), n
        )
        for t, vec in enumerate(vectors):
            scalar = simulate_comb_reference(c, dict(zip(c.comb_input_lines, vec)))
            for line in c.lines:
                assert (packed[line] >> t) & 1 == scalar[line], (line, t)


class TestFaultVerdictAgreement:
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_detection_matches_scalar_reference(self, data):
        """PPSFP verdicts == scalar forced-resimulation verdicts."""
        c = random_circuit(data.draw(st.integers(0, 4)))
        rng = random.Random(data.draw(st.integers(0, 999)))
        state = [0] * len(c.flops)
        tests = []
        for _ in range(data.draw(st.integers(1, 5))):
            v1 = [rng.randint(0, 1) for _ in c.inputs]
            v2 = [rng.randint(0, 1) for _ in c.inputs]
            test = make_broadside_test(c, state, v1, v2)
            tests.append(test)
            state = list(test.s2)
        faults = all_transition_faults(c)
        faults = rng.sample(faults, min(30, len(faults)))
        sim = TransitionFaultSimulator(c)
        words = sim.detection_words(tests, faults)
        for fault in faults:
            for t, test in enumerate(tests):
                expect = detects_transition_reference(c, test, fault)
                got = bool((words[fault] >> t) & 1)
                assert got == expect, (fault, t)
