"""Tests for the BIST control counters and derived signals."""

import pytest

from repro.bist.counters import (
    ClockCycleCounter,
    ControllerCounters,
    SetSelector,
    counter_bits,
)


class TestCounterBits:
    def test_widths(self):
        assert counter_bits(2) == 1
        assert counter_bits(3) == 2
        assert counter_bits(4) == 2
        assert counter_bits(5) == 3
        assert counter_bits(1024) == 10

    def test_minimum_one_bit(self):
        assert counter_bits(0) == 1
        assert counter_bits(1) == 1


class TestClockCycleCounter:
    def test_apply_signal_every_two_cycles(self):
        """Fig 4.6 with q=1: the apply signal fires every 2nd cycle."""
        counter = ClockCycleCounter.for_length(64, q=1)
        fires = []
        for cycle in range(8):
            fires.append(counter.apply_signal)
            counter.tick()
        assert fires == [1, 0, 1, 0, 1, 0, 1, 0]

    def test_apply_signal_q2(self):
        counter = ClockCycleCounter.for_length(64, q=2)
        fires = [counter.apply_signal]
        for _ in range(7):
            counter.tick()
            fires.append(counter.apply_signal)
        assert fires == [1, 0, 0, 0, 1, 0, 0, 0]

    def test_hold_enable_every_four_cycles(self):
        """Fig 4.11 with h=2: holding enable every 4th cycle."""
        counter = ClockCycleCounter.for_length(64, h=2)
        fires = [counter.hold_enable]
        for _ in range(7):
            counter.tick()
            fires.append(counter.hold_enable)
        assert fires == [1, 0, 0, 0, 1, 0, 0, 0]

    def test_hold_cycles_never_odd(self):
        """With h >= 1, holding never lands on a capture transition."""
        counter = ClockCycleCounter.for_length(64, h=1)
        for cycle in range(32):
            if counter.hold_enable:
                assert cycle % 2 == 0
            counter.tick()

    def test_wraps(self):
        counter = ClockCycleCounter(width=3)
        for _ in range(8):
            counter.tick()
        assert counter.value == 0

    def test_reset(self):
        counter = ClockCycleCounter.for_length(16)
        counter.tick()
        counter.reset()
        assert counter.value == 0


class TestSetSelector:
    def test_one_hot(self):
        sel = SetSelector(n_sets=3)
        assert sel.one_hot() == [1, 0, 0]
        sel.advance()
        assert sel.one_hot() == [0, 1, 0]

    def test_done(self):
        sel = SetSelector(n_sets=2)
        assert not sel.done
        sel.advance()
        sel.advance()
        assert sel.done

    def test_width(self):
        assert SetSelector(n_sets=5).width == 3


class TestControllerCounters:
    def test_bit_widths(self):
        counters = ControllerCounters(
            l_max=1000, l_scan=100, n_seg_max=8, n_multi=30, n_hold_sets=4
        )
        widths = counters.bit_widths
        assert widths["clock_cycle"] == 10
        assert widths["shift"] == 7
        assert widths["segment"] == 3
        assert widths["sequence"] == 5
        assert widths["set"] == 2
        assert counters.total_flops == sum(widths.values())

    def test_no_hold_sets_no_set_counter(self):
        counters = ControllerCounters(l_max=10, l_scan=10, n_seg_max=2, n_multi=2)
        assert "set" not in counters.bit_widths
