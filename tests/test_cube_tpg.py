"""Tests for the primary input cube and the TPG structures."""

import pytest

from repro.bist.cube import InputCube, compute_input_cube, synchronization_count
from repro.bist.tpg import DevelopedTpg, ReferenceTpg
from repro.circuits.benchmarks import get_circuit
from repro.circuits.netlist import Circuit
from repro.logic.values import X


def sync_circuit():
    """reset=1 forces both flops to 0: a strongly synchronizing input."""
    c = Circuit(name="sync")
    c.add_input("reset")
    c.add_input("d")
    c.add_gate("nrst", "NOT", ["reset"])
    c.add_gate("d0", "AND", ["nrst", "d"])
    c.add_gate("d1", "AND", ["nrst", "q0"])
    c.add_dff(q="q0", d="d0")
    c.add_dff(q="q1", d="d1")
    c.add_output("d1")
    c.validate()
    return c


class TestCube:
    def test_synchronization_counts(self):
        c = sync_circuit()
        assert synchronization_count(c, "reset", 1) == 2  # both flops forced 0
        assert synchronization_count(c, "reset", 0) == 0

    def test_cube_biases_away_from_synchronizing_value(self):
        c = sync_circuit()
        cube = compute_input_cube(c)
        # reset=1 synchronizes 2 flops, reset=0 none -> C(reset)=0.
        assert cube.value_of(0) == 0

    def test_data_input_biased_toward_one(self):
        c = sync_circuit()
        cube = compute_input_cube(c)
        # d=0 forces d0 (one next-state var) to 0; d=1 leaves it unknown,
        # so the cube biases d toward 1.
        assert cube.value_of(1) == 1

    def test_n_specified(self):
        assert InputCube(values=(0, 1, X, X)).n_specified == 2


class TestDevelopedTpg:
    def test_register_sizing(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c, m=3)
        nsp = tpg.cube.n_specified
        npi = len(c.inputs)
        assert tpg.n_register_bits == 3 * nsp + (npi - nsp)
        assert tpg.n_lfsr == 32

    def test_sequences_deterministic(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        assert tpg.sequence(77, 20) == tpg.sequence(77, 20)
        assert tpg.sequence(77, 20) != tpg.sequence(78, 20)

    def test_vector_width(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        vec = tpg.sequence(5, 3)[0]
        assert len(vec) == len(c.inputs)
        assert set(vec) <= {0, 1}

    def test_requires_seed(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        with pytest.raises(RuntimeError):
            DevelopedTpg.for_circuit(c).next_vector()

    def test_bias_probability(self):
        """A C(i)=0 input sees 0 with probability ~1 - 1/2^m."""
        c = sync_circuit()
        tpg = DevelopedTpg.for_circuit(c, m=3)
        seq = tpg.sequence(123, 4000)
        zeros = sum(1 for v in seq if v[0] == 0)
        assert zeros / len(seq) == pytest.approx(1 - 1 / 8, abs=0.05)

    def test_init_cycles(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        assert tpg.init_cycles == tpg.n_register_bits


class TestReferenceTpg:
    def test_lfsr_grows_with_inputs(self):
        c = get_circuit("s298")
        ref = ReferenceTpg.for_circuit(c, m=3, d=4)
        assert ref.n_lfsr == 4 * len(c.inputs)

    def test_m_bounded_by_d(self):
        c = get_circuit("s298")
        with pytest.raises(ValueError):
            ReferenceTpg.for_circuit(c, m=5, d=4)

    def test_sequence_shape(self):
        c = get_circuit("s298")
        ref = ReferenceTpg.for_circuit(c)
        seq = ref.sequence(3, 10)
        assert len(seq) == 10
        assert all(len(v) == len(c.inputs) for v in seq)

    def test_developed_smaller_for_wide_inputs(self):
        """The developed TPG's flop budget beats [73] on wide interfaces."""
        c = get_circuit("wb_dma")  # 215 inputs
        ref = ReferenceTpg.for_circuit(c)
        dev = DevelopedTpg.for_circuit(c)
        assert dev.n_lfsr + dev.n_register_bits < ref.n_lfsr


class TestSequenceBatchValidation:
    """sequence_batch rejects bad seed lists with named sizes."""

    def test_empty_and_oversized_seed_lists(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        with pytest.raises(ValueError, match="got 0 seeds"):
            tpg.sequence_batch([], 4)
        with pytest.raises(ValueError, match="got 65 seeds"):
            tpg.sequence_batch(list(range(1, 66)), 4)

    def test_zero_seed_names_lane(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        with pytest.raises(
            ValueError, match=r"DevelopedTpg.sequence_batch: seeds\[1\] = 0"
        ):
            tpg.sequence_batch([5, 0, 7], 4)

    def test_overwide_seed_rejected(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        with pytest.raises(ValueError, match="non-zero 32-bit LFSR seed"):
            tpg.sequence_batch([1 << 32], 4)

    def test_valid_batch_still_matches_scalar(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        rows = tpg.sequence_batch([9, 21], 6)
        for t, seed in enumerate((9, 21)):
            scalar = tpg.sequence(seed, 6)
            got = [[(w >> t) & 1 for w in row] for row in rows]
            assert got == scalar
