"""Property and regression tests for the per-task seed derivation.

``derive_seed`` is the keystone of the retry/resume determinism story: a
retried or resumed task re-runs with the same key and therefore the same
seed, so its row is byte-identical to one that never failed.  The
property tests pin the contract (stable, order-independent, in-range,
key-sensitive); the pinned-value test freezes the actual mixing function
so a refactor cannot silently reshuffle every published table.
"""

import random

from hypothesis import given, strategies as st

from repro.experiments.runner import derive_seed

_keys = st.text(min_size=1, max_size=40)
_seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(_seeds, _keys)
def test_stable_for_same_inputs(base_seed, key):
    assert derive_seed(base_seed, key) == derive_seed(base_seed, key)


@given(_seeds, _keys)
def test_always_a_positive_31_bit_seed(base_seed, key):
    value = derive_seed(base_seed, key)
    assert 1 <= value < 2**31 - 1


@given(_seeds, st.lists(_keys, min_size=2, max_size=8, unique=True), st.randoms())
def test_independent_of_derivation_order(base_seed, keys, rng):
    """Deriving in any task order yields the same per-key mapping."""
    forward = {k: derive_seed(base_seed, k) for k in keys}
    shuffled = list(keys)
    rng.shuffle(shuffled)
    assert {k: derive_seed(base_seed, k) for k in shuffled} == forward


def test_distinct_across_campaign_keys():
    """The real campaign key namespace gets distinct streams per row."""
    keys = [f"table4.3/{c}" for c in ("s27", "s298", "s344", "s386", "s526")]
    keys += [f"table4.4/{c}/{d}" for c in ("s298", "s526") for d in ("s344", "s820")]
    seeds = [derive_seed(11, k) for k in keys]
    assert len(set(seeds)) == len(seeds)


def test_distinct_across_base_seeds():
    sample = random.Random(0)
    bases = sample.sample(range(2**20), 50)
    seeds = {derive_seed(b, "table4.3/s298") for b in bases}
    assert len(seeds) == 50


def test_pinned_values():
    """Frozen outputs: changing these reshuffles every published table."""
    assert derive_seed(5, "table4.3/s298") == 885368360
    assert derive_seed(5, "table4.3/s344") == 153091704
    assert derive_seed(1, "table4.4/s526/s820") == 1124126695
    assert derive_seed(123456, "x") == 1864235207
