"""Tests for cause-effect diagnosis."""

import random

import pytest

from repro.circuits.benchmarks import get_circuit
from repro.faults.diagnosis import build_dictionary, diagnose, simulate_defect
from repro.faults.lists import all_transition_faults
from repro.logic.simulator import make_broadside_test


@pytest.fixture(scope="module")
def setup():
    c = get_circuit("s298")
    faults = all_transition_faults(c)
    rng = random.Random(3)
    tests = [
        make_broadside_test(
            c,
            [rng.randint(0, 1) for _ in c.flops],
            [rng.randint(0, 1) for _ in c.inputs],
            [rng.randint(0, 1) for _ in c.inputs],
        )
        for _ in range(200)
    ]
    dictionary = build_dictionary(c, tests, faults)
    return c, faults, tests, dictionary


class TestDiagnose:
    def test_injected_fault_ranked_first_or_equivalent(self, setup):
        """Injecting a modelled defect, diagnosis must rank it (or an
        indistinguishable equivalent) at the top."""
        c, faults, tests, dictionary = setup
        rng = random.Random(7)
        detectable = [f for f in faults if dictionary[f]]
        checked = 0
        for fault in rng.sample(detectable, 10):
            observed = simulate_defect(c, tests, fault)
            ranked = diagnose(c, tests, observed, faults, dictionary=dictionary)
            assert ranked, fault
            best = ranked[0]
            # The top candidate must predict exactly the observed behaviour
            # (the injected fault itself or a response-equivalent fault).
            assert best.mispredicted == 0 and best.missed == 0, fault
            top_words = {
                dictionary[cand.fault]
                for cand in ranked
                if cand.score == ranked[0].score
            }
            assert dictionary[fault] in top_words
            checked += 1
        assert checked == 10

    def test_no_failures_gives_benign_candidates(self, setup):
        c, faults, tests, dictionary = setup
        ranked = diagnose(c, tests, [0] * len(tests), faults, dictionary=dictionary)
        # Perfectly passing device: best candidates predict no failures.
        assert all(c2.mispredicted == 0 for c2 in ranked[:1])

    def test_observation_length_checked(self, setup):
        c, faults, tests, dictionary = setup
        with pytest.raises(ValueError):
            diagnose(c, tests, [0, 1], faults, dictionary=dictionary)

    def test_top_limits_results(self, setup):
        c, faults, tests, dictionary = setup
        fault = next(f for f in faults if dictionary[f])
        observed = simulate_defect(c, tests, fault)
        assert len(diagnose(c, tests, observed, faults, dictionary=dictionary, top=3)) <= 3

    def test_score_ordering(self, setup):
        c, faults, tests, dictionary = setup
        fault = next(f for f in faults if dictionary[f])
        observed = simulate_defect(c, tests, fault)
        ranked = diagnose(c, tests, observed, faults, dictionary=dictionary)
        scores = [cand.score for cand in ranked]
        assert scores == sorted(scores)
