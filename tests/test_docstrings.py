"""Meta-test: every public module, class, function and method is documented."""

import importlib
import inspect
import pkgutil

import repro


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) == module.__name__:
                yield name, obj


def _iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_callable_has_docstring():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for meth_name, meth in vars(obj).items():
                    if meth_name.startswith("_"):
                        continue
                    if inspect.isfunction(meth) and not (meth.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}.{meth_name}")
    assert not missing, f"undocumented public items: {missing}"


def test_package_exports_resolve():
    """Every name in a package __init__'s __all__ must be importable."""
    for module in _iter_modules():
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.{name}"
