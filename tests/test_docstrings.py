"""Meta-test: every public module, class, function and method is documented.

The pydocstyle checks mirror the ruff ``D`` rules selected in
``pyproject.toml`` for the public API surface (``repro.core``,
``repro.faults``, ``repro.experiments``, ``repro.cache``) so the contract
is enforced even where ruff is not installed.
"""

import ast
import importlib
import inspect
import pkgutil
from pathlib import Path

import repro


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) == module.__name__:
                yield name, obj


def _iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_callable_has_docstring():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for meth_name, meth in vars(obj).items():
                    if meth_name.startswith("_"):
                        continue
                    if inspect.isfunction(meth) and not (meth.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}.{meth_name}")
    assert not missing, f"undocumented public items: {missing}"


def test_package_exports_resolve():
    """Every name in a package __init__'s __all__ must be importable."""
    for module in _iter_modules():
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.{name}"


# ---------------------------------------------------------------------------
# Pydocstyle (ruff D-rule) subset for the public API packages
# ---------------------------------------------------------------------------

SRC_ROOT = Path(repro.__file__).resolve().parent

#: Packages whose docstrings are gated by ruff's D rules in pyproject.toml.
PUBLIC_API_PACKAGES = ("core", "faults", "experiments", "cache")


def _public_api_files():
    for pkg in PUBLIC_API_PACKAGES:
        yield from sorted((SRC_ROOT / pkg).rglob("*.py"))


def _walk_defs(tree, qualname):
    for child in ast.iter_child_nodes(tree):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield f"{qualname}.{child.name}", child
            yield from _walk_defs(child, f"{qualname}.{child.name}")


def _needs_docstring(name):
    return not name.startswith("_") or name == "__init__"


def test_public_api_files_exist():
    """The gated packages are really there (guards against a silent rename)."""
    files = list(_public_api_files())
    assert len(files) > 10
    for pkg in PUBLIC_API_PACKAGES:
        assert (SRC_ROOT / pkg / "__init__.py").exists(), pkg


def test_public_api_docstrings_present():
    """D100-D107/D419: every public def/class/module carries a docstring."""
    missing = []
    for path in _public_api_files():
        tree = ast.parse(path.read_text())
        rel = path.relative_to(SRC_ROOT.parent)
        if not (ast.get_docstring(tree) or "").strip():
            missing.append(f"{rel}: module")
        for qual, node in _walk_defs(tree, path.stem):
            if _needs_docstring(node.name):
                if not (ast.get_docstring(node) or "").strip():
                    missing.append(f"{rel}: {qual}")
    assert not missing, f"undocumented public API defs: {missing}"


def test_public_api_summary_lines_end_with_period():
    """D400: the first docstring line is a sentence ending in a period."""
    bad = []
    for path in _public_api_files():
        tree = ast.parse(path.read_text())
        rel = path.relative_to(SRC_ROOT.parent)
        nodes = [("module", tree)] + list(_walk_defs(tree, path.stem))
        for qual, node in nodes:
            doc = ast.get_docstring(node)
            if not doc or not doc.strip():
                continue
            first = doc.strip().splitlines()[0].rstrip()
            if not first.endswith("."):
                bad.append(f"{rel}: {qual}: {first[:60]!r}")
    assert not bad, f"summary lines not ending in a period: {bad}"


def test_public_api_docstrings_use_triple_double_quotes():
    """D300: docstrings are written with triple double quotes."""
    bad = []
    for path in _public_api_files():
        source = path.read_text()
        tree = ast.parse(source)
        rel = path.relative_to(SRC_ROOT.parent)
        nodes = [("module", tree)] + list(_walk_defs(tree, path.stem))
        for qual, node in nodes:
            if ast.get_docstring(node) is None:
                continue
            stmt = node.body[0].value
            segment = ast.get_source_segment(source, stmt) or ""
            if not segment.lstrip("rRuU").startswith('"""'):
                bad.append(f"{rel}: {qual}")
    assert not bad, f"docstrings not using triple double quotes: {bad}"
