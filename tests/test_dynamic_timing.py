"""Tests for the event-driven dynamic timing simulator."""

import random

import pytest

from repro.circuits.benchmarks import get_circuit
from repro.experiments.figures import fig_1_4_circuit
from repro.faults.models import Path, PathDelayFault, RISE
from repro.logic.simulator import make_broadside_test, simulate_broadside
from repro.sta.dynamic import DynamicTimingSimulator, dynamic_arrival, dynamic_path_delay
from repro.sta.engine import CaseAnalysis, StaEngine


class TestSettledValues:
    def test_final_values_match_zero_delay_sim(self):
        """Delays reorder events but never change the settled fixpoint."""
        c = get_circuit("s298")
        rng = random.Random(1)
        for _ in range(10):
            t = make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            timed = dynamic_arrival(c, t)
            _, frame2 = simulate_broadside(c, t)
            for line in c.lines:
                assert timed[line].value == frame2[line], line

    def test_steady_lines_settle_at_zero(self):
        c = fig_1_4_circuit()
        t = make_broadside_test(c, [], [0, 0, 1, 0], [0, 0, 1, 0])  # no change
        timed = dynamic_arrival(c, t)
        assert all(v.settle_time == 0.0 for v in timed.values())

    def test_switching_gate_pays_its_own_delay(self):
        """A gate that switches settles no earlier than its fastest arc.

        (Strict input-settle causality does not hold under inertial
        cancellation: an input may glitch later without re-moving the
        output.)
        """
        from repro.circuits.library import DEFAULT_LIBRARY

        c = get_circuit("s298")
        rng = random.Random(2)
        t = make_broadside_test(
            c,
            [rng.randint(0, 1) for _ in c.flops],
            [rng.randint(0, 1) for _ in c.inputs],
            [rng.randint(0, 1) for _ in c.inputs],
        )
        timed = dynamic_arrival(c, t)
        for gate in c.topo_gates:
            out = timed[gate.name]
            if out.settle_time > 0:
                fastest = min(
                    DEFAULT_LIBRARY.delay(gate.gate_type, len(gate.inputs), "rise"),
                    DEFAULT_LIBRARY.delay(gate.gate_type, len(gate.inputs), "fall"),
                )
                assert out.settle_time >= fastest - 1e-12


class TestPathDelay:
    def test_robust_test_matches_margin_free_sta(self):
        """Under Fig 1.4's robust test the observed delay equals the STA
        delay with all side-input states known (margins vanish)."""
        c = fig_1_4_circuit()
        fault = PathDelayFault(Path(lines=("a", "c", "e", "g")), RISE)
        t = make_broadside_test(c, [], [0, 0, 1, 0], [1, 0, 1, 0])
        observed = dynamic_path_delay(c, fault, t)
        sta = StaEngine(c)
        pins = {name: (a, b) for name, a, b in zip(c.inputs, t.v1, t.v2)}
        after_tg = sta.path_delay(fault, case=CaseAnalysis(pins=pins))
        assert observed == pytest.approx(after_tg)

    def test_unlaunched_test_returns_none(self):
        c = fig_1_4_circuit()
        fault = PathDelayFault(Path(lines=("a", "c", "e", "g")), RISE)
        t = make_broadside_test(c, [], [1, 0, 1, 0], [1, 0, 1, 0])
        assert dynamic_path_delay(c, fault, t) is None

    def test_observed_never_exceeds_worst_arrival(self):
        """Traditional STA's worst arrival time upper-bounds every
        dynamically observed settle time -- including hazard chains along
        paths that case analysis would prune."""
        c = get_circuit("s298")
        sta = StaEngine(c)
        arrival = sta.worst_arrival()
        rng = random.Random(5)
        checked = 0
        for _ in range(15):
            t = make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            timed = dynamic_arrival(c, t)
            for line in c.lines:
                assert timed[line].settle_time <= arrival[line] + 1e-9, line
            checked += 1
        assert checked == 15

    def test_observed_path_delay_bounded_by_sink_arrival(self):
        c = get_circuit("s298")
        sta = StaEngine(c)
        arrival = sta.worst_arrival()
        from repro.paths.enumeration import k_longest_paths

        rng = random.Random(6)
        observed_any = 0
        for path in k_longest_paths(c, 12):
            fault = PathDelayFault(path=path, direction=RISE)
            for _ in range(6):
                t = make_broadside_test(
                    c,
                    [rng.randint(0, 1) for _ in c.flops],
                    [rng.randint(0, 1) for _ in c.inputs],
                    [rng.randint(0, 1) for _ in c.inputs],
                )
                observed = dynamic_path_delay(c, fault, t)
                if observed is None:
                    continue
                assert observed <= arrival[path.sink] + 1e-9
                observed_any += 1
        assert observed_any > 0
