"""Tests for embedded-block composition and SWA_func estimation."""

import pytest

from repro.bist.tpg import DevelopedTpg
from repro.circuits.benchmarks import get_circuit, make_buffers_block
from repro.core.embedded import (
    compose,
    compose_with_buffers,
    estimate_swa_func,
)
from repro.logic.simulator import simulate_sequence


class TestCompose:
    def test_structure(self):
        driver = get_circuit("s344")
        target = get_circuit("s298")
        design = compose(driver, target)
        c = design.circuit
        assert len(c.inputs) == len(driver.inputs)
        assert len(c.flops) == len(driver.flops) + len(target.flops)
        assert len(design.target_lines) == target.num_lines
        c.validate()

    def test_interface_rule_enforced(self):
        driver = get_circuit("s27")  # 1 output
        target = get_circuit("s298")  # 3 inputs
        with pytest.raises(ValueError):
            compose(driver, target)

    def test_buffers_composition_is_identity(self):
        """Under the buffers driver the target sees the raw input sequence."""
        target = get_circuit("s298")
        design = compose_with_buffers(target)
        seq = [[1, 0, 1], [0, 1, 0], [1, 1, 1]]
        composed = simulate_sequence(
            design.circuit, [0] * len(design.circuit.flops), seq
        )
        standalone = simulate_sequence(target, [0] * len(target.flops), seq)
        # The target flop values must match cycle by cycle.
        for cyc in range(len(seq) + 1):
            composed_state = composed.states[cyc]
            target_part = composed_state[len(design.driver.flops):]
            assert target_part == standalone.states[cyc]

    def test_target_lines_cover_target(self):
        target = get_circuit("s298")
        design = compose_with_buffers(target)
        assert all(line.startswith("B2_") for line in design.target_lines)


class TestSwaFunc:
    def test_matches_scalar_reference(self):
        """The packed estimate equals scalar per-sequence simulation."""
        target = get_circuit("s298")
        design = compose_with_buffers(target)
        tpg = DevelopedTpg.for_circuit(design.driver)
        est = estimate_swa_func(design, n_sequences=4, length=40, tpg=tpg)
        # Recompute one lane by scalar simulation over the composition.
        seed = (0xC0FFEE + 0x9E3779B9 * 1) & 0xFFFFFFFF
        seq = tpg.sequence(seed, 40)
        result = simulate_sequence(design.circuit, [0] * len(design.circuit.flops), seq)
        target_lines = set(design.target_lines)
        peaks = []
        prev = None
        for values in result.line_values:
            if prev is not None:
                changed = sum(
                    1 for line in target_lines if values[line] != prev[line]
                )
                peaks.append(100.0 * changed / len(target_lines))
            prev = values
        assert est.per_sequence_peak[0] == pytest.approx(max(peaks))

    def test_constrained_driver_not_higher_than_buffers(self):
        """A constraining driver cannot raise the peak above ~buffers level."""
        target = get_circuit("s298")
        unconstrained = estimate_swa_func(
            compose_with_buffers(target),
            n_sequences=8,
            length=80,
            tpg=DevelopedTpg.for_circuit(target),
        )
        driver = get_circuit("s953")
        constrained = estimate_swa_func(
            compose(driver, target), n_sequences=8, length=80
        )
        assert constrained.swa_func <= unconstrained.swa_func + 8.0

    def test_lane_cap(self):
        target = get_circuit("s27")
        design = compose_with_buffers(target)
        with pytest.raises(ValueError):
            estimate_swa_func(design, n_sequences=65, length=10)

    def test_estimate_fields(self):
        target = get_circuit("s27")
        design = compose_with_buffers(target)
        est = estimate_swa_func(design, n_sequences=3, length=20)
        assert est.n_sequences == 3
        assert len(est.per_sequence_peak) == 3
        assert est.swa_func == max(est.per_sequence_peak)
