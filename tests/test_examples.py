"""Smoke tests: every example script runs end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "s27")
    assert "transition fault coverage" in out


def test_tpdf_atpg_flow():
    out = run_example("tpdf_atpg_flow.py", "s27", "60")
    assert "detected:" in out and "undetectable:" in out


def test_path_selection_flow():
    out = run_example("path_selection_flow.py", "s298", "3")
    assert "Target_PDF" in out


def test_scan_and_onchip_application():
    out = run_example("scan_and_onchip_application.py", "s27")
    assert "MISR signature" in out
    assert "MISMATCH detected" in out


@pytest.mark.slow
def test_embedded_block_bist():
    out = run_example("embedded_block_bist.py", "s298", "s953")
    assert "final coverage" in out


def test_mixed_mode_reseeding():
    out = run_example("mixed_mode_reseeding.py", "s344")
    assert "embedded" in out
