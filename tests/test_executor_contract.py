"""Executor conformance suite: every backend honors the same contract.

Parametrized over all three :mod:`repro.exec` backends -- ``inprocess``,
``pool``, and ``remote`` (real socket workers launched via ``repro-eda
worker``) -- these tests pin the contract that makes ``--executor`` a
pure wall-clock knob:

* ``drain()`` returns results in submission order no matter which order
  tasks finish in;
* injected worker crashes are retried and the recovered campaign is
  byte-identical to a clean run;
* exhausted retries degrade to typed :class:`TaskFailure` rows instead
  of raising;
* Table 4.3 renders byte-identically on every backend, and sharded
  fault grading through an injected executor matches serial grading;
* dispatch metrics land in the ``executor.*`` namespace and surface in
  the ``--stats`` report's "execution plane" section.
"""

import contextlib
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.circuits.benchmarks import get_circuit
from repro.core.builtin_gen import BuiltinGenConfig
from repro.exec import (
    EXECUTOR_KINDS,
    InProcessExecutor,
    LocalPoolExecutor,
    RemoteExecutor,
    validate_executor_kind,
    validate_jobs,
    validate_shards,
)
from repro.experiments.runner import ExperimentTask, run_tasks
from repro.experiments.tables4 import render_table_4_3, run_table_4_3
from repro.faults.collapse import collapsed_transition_faults
from repro.faults.fsim import FaultGrader
from repro.logic.simulator import make_broadside_test
from repro.resilience import faultpoints
from repro.resilience.deadline import clear_task_deadline
from repro.resilience.policy import RetryPolicy, TaskFailure

REPO = Path(__file__).resolve().parent.parent

#: A fast backoff so retry-heavy tests stay quick.
FAST = RetryPolicy(backoff_base_s=0.01, backoff_cap_s=0.05)

TINY_43 = dict(
    targets=("s27", "s298"),
    drivers=("s953",),
    config=BuiltinGenConfig(
        segment_length=40, time_limit=None, rng_seed=2,
        q_limit=1, r_limit=2, max_sequences=2,
    ),
    n_sequences=2,
    func_length=30,
)


@pytest.fixture(autouse=True)
def _clean_state():
    faultpoints.install(None)
    clear_task_deadline()
    obs.disable()
    obs.reset()
    yield
    faultpoints.install(None)
    clear_task_deadline()
    obs.disable()
    obs.reset()


def _square(x):
    return x * x


def _sleepy(i, delay):
    time.sleep(delay)
    return i


def _tasks(count=4, timeout_s=None, max_retries=None):
    return [
        ExperimentTask(
            key=f"sq/{i}",
            fn=_square,
            kwargs={"x": i},
            timeout_s=timeout_s,
            max_retries=max_retries,
        )
        for i in range(count)
    ]


def _spawn_workers(port, n=2, extra_env=None):
    """Launch ``n`` real ``repro-eda worker`` processes against ``port``."""
    env = os.environ.copy()
    env.pop(faultpoints.ENV_VAR, None)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}{REPO}"
    if extra_env:
        env.update(extra_env)
    return [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "worker",
                "--connect", f"127.0.0.1:{port}",
                "--connect-timeout", "60",
            ],
            cwd=REPO,
            env=env,
        )
        for _ in range(n)
    ]


@contextlib.contextmanager
def executor_for(kind, policy=None, workers=2, extra_env=None, collect=None):
    """Context-managed executor of ``kind``, remote workers included."""
    if kind == "inprocess":
        ex = InProcessExecutor(policy=policy)
        procs = []
    elif kind == "pool":
        ex = LocalPoolExecutor(n_workers=workers, policy=policy, collect=collect)
        procs = []
    else:
        ex = RemoteExecutor(
            listen=("127.0.0.1", 0), policy=policy, collect=collect
        )
        procs = _spawn_workers(ex.address[1], n=workers, extra_env=extra_env)
        ex.wait_for_workers(workers, timeout_s=60.0)
    try:
        yield ex
    finally:
        ex.close()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_jobs_guard_names_value(self, bad):
        with pytest.raises(ValueError, match=f"got {bad}"):
            validate_jobs(bad)

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_shards_guard_names_value(self, bad):
        with pytest.raises(ValueError, match=f"got {bad}"):
            validate_shards(bad)

    def test_none_passes_both_guards(self):
        assert validate_jobs(None) is None
        assert validate_shards(None) is None
        assert validate_jobs(3) == 3
        assert validate_shards(3) == 3

    def test_executor_kind_guard(self):
        for kind in EXECUTOR_KINDS:
            assert validate_executor_kind(kind) == kind
        with pytest.raises(ValueError, match="'bogus'"):
            validate_executor_kind("bogus")


class TestOrdering:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_results_in_submission_order(self, kind):
        # The first task is the slowest: with 2 workers it finishes
        # last, so completion order inverts submission order.
        delays = (0.3, 0.0, 0.05, 0.0)
        tasks = [
            ExperimentTask(key=f"slp/{i}", fn=_sleepy, kwargs={"i": i, "delay": d})
            for i, d in enumerate(delays)
        ]
        completion_slots = []

        def on_complete(slot, outcome, snapshot):
            completion_slots.append(slot)

        with executor_for(kind, policy=FAST) as ex:
            futures = [ex.submit(t) for t in tasks]
            assert not any(f.done() for f in futures)
            results = ex.drain(on_complete)
        assert results == [0, 1, 2, 3]
        assert [f.result() for f in futures] == [0, 1, 2, 3]
        assert sorted(completion_slots) == [0, 1, 2, 3]
        if kind != "inprocess":
            assert completion_slots != [0, 1, 2, 3]


class TestRetryAfterCrash:
    @pytest.mark.parametrize("kind", ["pool", "remote"])
    def test_crash_once_recovers_identically(self, kind):
        clean = run_tasks(_tasks(), jobs=1, policy=FAST)
        spec = "runner.task:sq/1:crash_once"
        extra_env = None
        if kind == "remote":
            # Remote workers arm from their own environment: inject the
            # same spec into every worker; crash_once fires on attempt 0
            # only, so exactly one seat dies.
            extra_env = {faultpoints.ENV_VAR: spec}
        else:
            faultpoints.install(spec)
        obs.enable()
        with executor_for(kind, policy=FAST, extra_env=extra_env) as ex:
            injected = run_tasks(_tasks(), executor=ex)
        assert injected == clean == [0, 1, 4, 9]
        counters = obs.registry().counters
        assert counters["runner.worker_crashes"] == 1
        assert counters["runner.retries"] == 1
        assert counters["runner.tasks_completed"] == 4

    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_flaky_error_retries_everywhere(self, kind):
        spec = "runner.task:sq/3:flaky2"
        extra_env = None
        if kind == "remote":
            extra_env = {faultpoints.ENV_VAR: spec}
        else:
            faultpoints.install(spec)
        obs.enable()
        with executor_for(kind, policy=FAST, extra_env=extra_env) as ex:
            out = run_tasks(_tasks(max_retries=2), executor=ex)
        assert out == [0, 1, 4, 9]
        assert obs.registry().counters["runner.retries"] == 2


class TestDegradation:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_exhausted_retries_degrade_to_typed_failure(self, kind):
        spec = "runner.task:sq/1:error"
        extra_env = None
        if kind == "remote":
            extra_env = {faultpoints.ENV_VAR: spec}
        else:
            faultpoints.install(spec)
        obs.enable()
        with executor_for(kind, policy=FAST, extra_env=extra_env) as ex:
            out = run_tasks(_tasks(max_retries=1), executor=ex)
        assert out[0] == 0 and out[2] == 4 and out[3] == 9
        failure = out[1]
        assert isinstance(failure, TaskFailure)
        assert failure.key == "sq/1"
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert obs.registry().counters["runner.task_failures"] == 1


@pytest.fixture(scope="module")
def table_43_reference():
    """The serial (jobs=1, no executor) rendering every backend must match."""
    return render_table_4_3(run_table_4_3(jobs=1, **TINY_43))


class TestByteIdentity:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_table_43_identical(self, kind, table_43_reference):
        with executor_for(kind, policy=FAST) as ex:
            rendered = render_table_4_3(run_table_4_3(executor=ex, **TINY_43))
        assert rendered == table_43_reference

    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_sharded_grading_identical(self, kind):
        import random

        circuit = get_circuit("s298")
        faults = collapsed_transition_faults(circuit)
        rng = random.Random(7)
        tests = [
            make_broadside_test(
                circuit,
                [rng.randint(0, 1) for _ in circuit.flops],
                [rng.randint(0, 1) for _ in circuit.inputs],
                [rng.randint(0, 1) for _ in circuit.inputs],
            )
            for _ in range(24)
        ]
        serial = FaultGrader(circuit, faults).preview(tests)
        with executor_for(kind, policy=FAST) as ex:
            with FaultGrader(circuit, faults, shards=2, executor=ex) as grader:
                assert grader.preview(tests) == serial
                assert grader._pool is None  # injected executor, not owned


class TestObservability:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_dispatch_metrics_and_report_section(self, kind):
        obs.enable()
        with executor_for(kind, policy=FAST) as ex:
            out = run_tasks(_tasks(), executor=ex)
        assert out == [0, 1, 4, 9]
        snap = obs.registry().snapshot()
        assert snap["counters"]["executor.submitted"] == 4
        hist = snap["histograms"][f"executor.{kind}.dispatch_ms"]
        assert hist["count"] == 4
        report = obs.render_report(obs.registry())
        assert "execution plane" in report
        assert "submitted" in report


class TestCrossBackendResume:
    def test_checkpoint_written_by_pool_resumes_inprocess(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        with executor_for("pool", policy=FAST) as ex:
            first = run_table_4_3(
                checkpoint_path=str(journal), executor=ex, **TINY_43
            )
        obs.enable()
        with executor_for("inprocess", policy=FAST) as ex:
            resumed = run_table_4_3(
                checkpoint_path=str(journal), resume=True, executor=ex, **TINY_43
            )
        assert render_table_4_3(resumed) == render_table_4_3(first)
        counters = obs.registry().counters
        # One checkpointed task per target; every one replays from the
        # journal, so the resumed run dispatches nothing.
        assert counters["runner.tasks_resumed"] == len(TINY_43["targets"])
        assert "runner.tasks_completed" not in counters

    def test_coordinator_crash_midway_resumes_on_other_backend(self, tmp_path):
        """Kill the coordinator mid-campaign; finish elsewhere, byte-identical.

        A remote campaign journals its rows; a coordinator crash is
        simulated by tearing the journal down to the header, one
        complete row, and a half-written second row (the write the
        crash interrupted).  ``--resume`` on a *different* backend must
        replay the intact row, discard the torn line, recompute the
        rest, and render byte-identically.
        """
        journal = tmp_path / "campaign.jsonl"
        with executor_for("remote", policy=FAST) as ex:
            first = run_table_4_3(
                checkpoint_path=str(journal), executor=ex, **TINY_43
            )
        lines = journal.read_text().splitlines()
        assert len(lines) == 1 + len(TINY_43["targets"])  # header + rows
        torn = "\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2]
        journal.write_text(torn)
        obs.enable()
        with executor_for("inprocess", policy=FAST) as ex:
            resumed = run_table_4_3(
                checkpoint_path=str(journal), resume=True, executor=ex, **TINY_43
            )
        assert render_table_4_3(resumed) == render_table_4_3(first)
        counters = obs.registry().counters
        assert counters["runner.tasks_resumed"] == 1  # the intact row
        assert counters["runner.tasks_completed"] == 1  # the recomputed row
