"""Tests for the experiment database (``repro.expdb``).

Covers the ISSUE's required cases -- schema-version migration (open a v1
file with v2 code), fingerprint/code-hash round-trip, concurrent
multi-process appends, and ``db gate`` pass/fail golden cases -- plus the
producer wiring (runner rows, CLI run lifecycle, stored-run reports) and
the ``repro-eda db`` / ``stats --db`` surfaces.
"""

import json
import multiprocessing
import os
import sqlite3

import pytest

from repro import expdb, obs
from repro.cli import main
from repro.expdb.gate import GateResult
from repro.expdb.store import MIGRATIONS, SCHEMA_VERSION, ExperimentDB
from repro.experiments.runner import ExperimentTask, run_tasks
from repro.obs.registry import MetricsRegistry
from repro.resilience.checkpoint import fingerprint_of


@pytest.fixture(autouse=True)
def _no_ambient_db(monkeypatch):
    """Isolate every test from REPRO_DB/REPRO_DB_RUN and module state."""
    monkeypatch.delenv(expdb.ENV_VAR, raising=False)
    monkeypatch.delenv(expdb.RUN_ENV_VAR, raising=False)
    expdb.reset()
    obs.disable()
    obs.reset()
    yield
    expdb.reset()
    obs.disable()
    obs.reset()


def snapshot_with_metrics() -> dict:
    """A registry snapshot carrying one of each metric kind."""
    reg = MetricsRegistry(enabled=True)
    reg.count("gen.seeds_evaluated", 128)
    reg.gauge("gen.coverage_percent", 93.5)
    for v in range(200):
        reg.observe("gen.truncated_length", float(v))
    reg.span_enter("gen.run")
    reg.span_exit("gen.run", 0.0, 1.25, {"circuit": "s27"})
    return reg.snapshot()


def bench_payload(speedup: float = 8.0) -> dict:
    """A minimal bench payload with one gated and one ungated metric."""
    return {
        "benchmark": "kernel",
        "code_hash": "cafe0123cafe0123",
        "utc": "2026-01-01T00:00:00Z",
        "workload": {"repeats": 2},
        "array_kernel": {
            "s1423": {"lines": 657, "per_lane_speedup": speedup},
        },
        "fault_grading": {"circuit": "b14", "speedup": 500.0, "n_tests": 64},
    }


class TestSchema:
    def test_new_file_is_current_version(self, tmp_path):
        with ExperimentDB(tmp_path / "e.db") as db:
            assert db.schema_version == SCHEMA_VERSION

    def test_v1_file_migrates_to_v2_preserving_rows(self, tmp_path):
        path = tmp_path / "old.db"
        conn = sqlite3.connect(path)
        for statement in MIGRATIONS[0]:
            conn.execute(statement)
        conn.execute("PRAGMA user_version = 1")
        # A v1 metrics row has no p50/p95/p99 columns.
        conn.execute(
            "INSERT INTO runs (kind, label, code_hash, started_utc, status)"
            " VALUES ('table', '4.3', 'deadbeef00000000', '2026-01-01T00:00:00Z',"
            " 'ok')"
        )
        conn.execute(
            "INSERT INTO metrics (run_id, name, kind, value)"
            " VALUES (1, 'gen.seeds_evaluated', 'counter', 64.0)"
        )
        conn.commit()
        conn.close()

        with ExperimentDB(path) as db:
            assert db.schema_version == SCHEMA_VERSION
            # Old data survives; quantile columns exist and read NULL.
            cols, rows = db.query(
                "SELECT name, value, p50 FROM metrics WHERE run_id = 1"
            )
            assert rows == [("gen.seeds_evaluated", 64.0, None)]
            # New writes populate the v2 columns.
            run_id = db.begin_run("table", "4.3")
            db.finish_run(run_id, snapshot=snapshot_with_metrics())
            hist = db.run_snapshot(run_id)["histograms"]["gen.truncated_length"]
            assert hist["p50"] == pytest.approx(99.0, abs=2.0)

    def test_newer_schema_is_rejected(self, tmp_path):
        path = tmp_path / "future.db"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(expdb.ExperimentDBError, match="newer"):
            ExperimentDB(path)

    def test_non_database_file_is_rejected(self, tmp_path):
        path = tmp_path / "not-a-db"
        path.write_text("just text\n" * 100)
        with pytest.raises(expdb.ExperimentDBError):
            ExperimentDB(path)


class TestRunsAndRows:
    def test_fingerprint_and_code_hash_round_trip(self, tmp_path):
        params = {"table": "4.3", "targets": ("s27",), "n_sequences": 16}
        fp = fingerprint_of(params)
        with ExperimentDB(tmp_path / "e.db") as db:
            run_id = db.begin_run(
                "table", "4.3", fingerprint=fp, kernel="word", executor="pool"
            )
            db.finish_run(run_id)
            run = db.run(run_id)
        assert run["fingerprint"] == fp == fingerprint_of(params)
        assert run["code_hash"] == expdb.code_hash()
        assert len(run["code_hash"]) == 16

    def test_annotate_run_rejects_unknown_fields(self, tmp_path):
        with ExperimentDB(tmp_path / "e.db") as db:
            run_id = db.begin_run("table", "4.3")
            with pytest.raises(ValueError, match="status"):
                db.annotate_run(run_id, status="hacked")

    def test_snapshot_round_trip_renders(self, tmp_path):
        from repro.obs.report import render_report

        with ExperimentDB(tmp_path / "e.db") as db:
            run_id = db.begin_run("generate", "s27")
            db.finish_run(run_id, snapshot=snapshot_with_metrics())
            snap = db.run_snapshot(run_id)
        assert snap["counters"]["gen.seeds_evaluated"] == 128
        assert snap["gauges"]["gen.coverage_percent"] == 93.5
        assert len(snap["events"]) == 1
        report = render_report(snap, title="stored run")
        assert "generation (Fig 4.9 construction)" in report
        assert "p50=" in report  # stored quantiles feed the formatter

    def test_runner_records_fresh_resumed_and_failed_rows(self, tmp_path):
        from repro.resilience.checkpoint import CheckpointJournal
        from repro.resilience.policy import RetryPolicy, TaskFailure

        db = expdb.configure(tmp_path / "e.db")
        journal_path = tmp_path / "journal.jsonl"
        run_id = db.begin_run("table", "test")
        expdb.set_current_run(run_id)
        tasks = [
            ExperimentTask(key="row/a", fn=_double, kwargs={"x": 2}),
            ExperimentTask(key="row/b", fn=_boom, max_retries=0),
        ]
        journal = CheckpointJournal.open(
            journal_path, fingerprint="fp", resume=False
        )
        results = run_tasks(
            tasks, policy=RetryPolicy(max_retries=0), checkpoint=journal
        )
        assert results[0] == 4
        assert isinstance(results[1], TaskFailure)
        rows = db.rows(run_id)
        assert [(r["key"], r["status"]) for r in rows] == [
            ("row/a", "ok"),
            ("row/b", "failed"),
        ]

        # Re-run with the journal: the completed row replays as resumed.
        run2 = db.begin_run("table", "test")
        expdb.set_current_run(run2)
        journal2 = CheckpointJournal.open(
            journal_path, fingerprint="fp", resume=True
        )
        run_tasks(
            [tasks[0]], policy=RetryPolicy(max_retries=0), checkpoint=journal2
        )
        assert [(r["key"], r["status"]) for r in db.rows(run2)] == [
            ("row/a", "resumed")
        ]

    def test_list_outcome_flattens_to_indexed_keys(self, tmp_path):
        db = expdb.configure(tmp_path / "e.db")
        run_id = db.begin_run("table", "test")
        expdb.set_current_run(run_id)
        run_tasks([ExperimentTask(key="grp", fn=_pair)])
        assert [r["key"] for r in db.rows(run_id)] == ["grp#0", "grp#1"]


def _double(x: int) -> int:
    """Module-level task fn (picklable) doubling its input."""
    return 2 * x


def _boom() -> None:
    """Module-level task fn that always fails."""
    raise RuntimeError("boom")


def _pair() -> list[dict]:
    """Module-level task fn returning a two-element list outcome."""
    return [{"v": 1}, {"v": 2}]


def _append_rows(args: tuple[str, int, int]) -> int:
    """Worker: open the shared DB and append ``n`` rows (own connection)."""
    path, worker, n = args
    with ExperimentDB(path) as db:
        run_id = db.begin_run("concurrency", f"worker-{worker}")
        for i in range(n):
            db.record_row(run_id, f"w{worker}/r{i}", i, {"worker": worker})
        db.finish_run(run_id)
    return n


class TestConcurrency:
    def test_parallel_processes_append_without_loss(self, tmp_path):
        path = str(tmp_path / "shared.db")
        # Create the file first so workers race on appends, not migration.
        ExperimentDB(path).close()
        n_workers, rows_each = 4, 25
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(n_workers) as pool:
            written = pool.map(
                _append_rows,
                [(path, w, rows_each) for w in range(n_workers)],
            )
        assert written == [rows_each] * n_workers
        with ExperimentDB(path) as db:
            runs = db.runs()
            assert len(runs) == n_workers
            assert all(r["status"] == "ok" for r in runs)
            _, rows = db.query("SELECT COUNT(*) FROM rows")
            assert rows == [(n_workers * rows_each,)]


class TestBenchAndGate:
    def test_flatten_handles_nested_and_flat_sections(self):
        samples = expdb.flatten_bench(bench_payload())
        assert ("array_kernel", "s1423", "per_lane_speedup", 8.0) in samples
        assert ("fault_grading", "b14", "speedup", 500.0) in samples
        # Bookkeeping keys and non-numeric leaves never become samples.
        assert not any(s[0] in ("workload", "benchmark", "utc") for s in samples)

    def test_gate_skips_without_history(self, tmp_path):
        with ExperimentDB(tmp_path / "e.db") as db:
            result = expdb.gate(db, current=bench_payload())
        assert result.ok  # skips never fail a fresh database
        assert all(c.status == "skip" for c in result.checks)

    def test_gate_passes_at_historical_level(self, tmp_path):
        with ExperimentDB(tmp_path / "e.db") as db:
            db.record_bench(bench_payload(8.0))
            db.record_bench(bench_payload(8.2))
            result = expdb.gate(db, current=bench_payload(8.0))
        assert isinstance(result, GateResult)
        assert result.ok
        by_label = {c.label: c for c in result.checks}
        assert by_label["array_kernel.s1423.per_lane_speedup"].status == "pass"

    def test_gate_fails_on_20_percent_regression(self, tmp_path):
        with ExperimentDB(tmp_path / "e.db") as db:
            db.record_bench(bench_payload(8.0))
            db.record_bench(bench_payload(8.0))
            result = expdb.gate(db, current=bench_payload(8.0 * 0.8))
        assert not result.ok
        failed = [c for c in result.checks if c.status == "fail"]
        assert [c.label for c in failed] == ["array_kernel.s1423.per_lane_speedup"]
        assert "FAIL" in result.report()

    def test_gate_latest_batch_judged_against_prior_only(self, tmp_path):
        with ExperimentDB(tmp_path / "e.db") as db:
            db.record_bench(bench_payload(8.0))
            db.record_bench(bench_payload(8.0))
            db.record_bench(bench_payload(8.0 * 0.8))  # the newest batch
            result = expdb.gate(db)
        assert not result.ok  # its own value must not dilute the history

    def test_bench_history_is_newest_first_and_bounded(self, tmp_path):
        with ExperimentDB(tmp_path / "e.db") as db:
            for s in (1.0, 2.0, 3.0):
                db.record_bench(bench_payload(s))
            history = db.bench_history(
                "array_kernel", "s1423", "per_lane_speedup", last=2
            )
        assert history == [3.0, 2.0]


class TestCliDb:
    def _seed(self, path) -> None:
        with ExperimentDB(path) as db:
            run_id = db.begin_run("table", "4.3", fingerprint="aa" * 8)
            db.record_row(run_id, "t/a#0", 0, {"Circuit": "s27", "FC %": 46.9})
            db.finish_run(run_id, snapshot=snapshot_with_metrics())
            db.record_bench(bench_payload(8.0))
            db.record_bench(bench_payload(8.0))

    def test_db_runs_and_show(self, tmp_path, capsys):
        path = str(tmp_path / "e.db")
        self._seed(path)
        assert main(["db", "runs", "--db", path]) == 0
        out = capsys.readouterr().out
        assert "table" in out and "4.3" in out
        assert main(["db", "show", "--db", path]) == 0
        out = capsys.readouterr().out
        assert "t/a#0" in out and "fingerprint" in out

    def test_db_query_tab_separated(self, tmp_path, capsys):
        path = str(tmp_path / "e.db")
        self._seed(path)
        sql = "SELECT key, json_extract(payload, '$.\"FC %\"') FROM rows"
        assert main(["db", "query", sql, "--db", path]) == 0
        out = capsys.readouterr().out
        assert "t/a#0\t46.9" in out

    def test_db_trend_metric_and_bench_fallback(self, tmp_path, capsys):
        path = str(tmp_path / "e.db")
        self._seed(path)
        assert main(["db", "trend", "--metric", "gen.seeds_evaluated", "--db", path]) == 0
        assert "128" in capsys.readouterr().out
        assert main(
            ["db", "trend", "--metric", "array_kernel.s1423.per_lane_speedup",
             "--db", path]
        ) == 0
        assert "8" in capsys.readouterr().out
        assert main(["db", "trend", "--metric", "no.such.metricxyz9", "--db", path]) == 1

    def test_db_gate_exit_codes(self, tmp_path, capsys):
        path = str(tmp_path / "e.db")
        self._seed(path)
        good = tmp_path / "good.json"
        good.write_text(json.dumps(bench_payload(8.0)))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(bench_payload(8.0 * 0.8)))
        assert main(["db", "gate", "--db", path, "--input", str(good)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["db", "gate", "--db", path, "--input", str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_db_without_path_is_usage_error(self, capsys):
        assert main(["db", "runs"]) == 2
        assert "REPRO_DB" in capsys.readouterr().err

    def test_stats_from_db_renders_stored_report(self, tmp_path, capsys):
        path = str(tmp_path / "e.db")
        self._seed(path)
        assert main(["stats", "--db", path]) == 0
        out = capsys.readouterr().out
        assert "run 1: table 4.3" in out
        assert "seeds_evaluated" in out

    def test_stats_db_without_runs_exits_1(self, tmp_path, capsys):
        path = str(tmp_path / "empty.db")
        ExperimentDB(path).close()
        assert main(["stats", "--db", path]) == 1


class TestCliCampaign:
    def test_table_db_records_rows_metrics_and_fingerprint(self, tmp_path, capsys):
        path = str(tmp_path / "e.db")
        assert main(["table", "4.2", "--db", path]) == 0
        capsys.readouterr()
        with ExperimentDB(path) as db:
            runs = db.runs()
            assert len(runs) == 1
            run = runs[0]
            assert run["kind"] == "table" and run["label"] == "4.2"
            assert run["status"] == "ok" and run["exit_code"] == 0
            assert run["code_hash"] == expdb.code_hash()
            assert run["n_metrics"] > 0  # --db implies metric collection
        # The run id must not leak into later commands in this process.
        assert expdb.current_run() is None

    def test_generate_db_records_result_row(self, tmp_path, capsys):
        path = str(tmp_path / "e.db")
        assert main(
            ["generate", "s27", "--length", "40", "--time-limit", "5",
             "--db", path]
        ) == 0
        capsys.readouterr()
        with ExperimentDB(path) as db:
            run = db.runs()[0]
            assert run["kind"] == "generate" and run["fingerprint"]
            rows = db.rows(run["id"])
            assert len(rows) == 1
            assert rows[0]["key"] == "generate/s27"
            assert rows[0]["payload"]["coverage"] > 0
