"""Smoke tests for the table/figure regeneration harness."""

import pytest

from repro.core.builtin_gen import BuiltinGenConfig
from repro.experiments.format import render, seconds
from repro.experiments.runner import ExperimentTask, derive_seed, run_tasks
from repro.experiments.tables2 import render_table, run_chapter2
from repro.experiments.tables3 import (
    run_selection,
    table_3_1_rows,
    table_3_4_rows,
)
from repro.experiments.tables4 import (
    Table43Case,
    eligible_drivers,
    run_table_4_3,
    render_table_4_3,
    swa_func_of,
    table_4_1_rows,
    table_4_2_rows,
)


class TestFormat:
    def test_render_alignment(self):
        out = render("T", ["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 10, "bb": None}])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.5" in out and "-" in out

    def test_seconds(self):
        assert seconds(0) == "0:00:00"
        assert seconds(3725) == "1:02:05"


class TestChapter2Harness:
    def test_all_paths_mode(self):
        runs = run_chapter2(["s27"], mode="all")
        assert runs[0].n_faults == 56
        for table in ("2.1", "2.3", "2.5"):
            out = render_table(table, runs)
            assert "s27" in out

    def test_longest_mode(self):
        runs = run_chapter2(
            ["s27"], mode="longest", min_detected=5, max_faults=60,
            heuristic_time_limit=0.2, bnb_time_limit=0.5,
        )
        from repro.atpg.tpdf import DETECTED

        assert runs[0].report.count(DETECTED) >= 5


class TestChapter3Harness:
    def test_table_3_1(self):
        _, result = run_selection("s298", n=4, closure_scan=16)
        rows = table_3_1_rows(result)
        assert rows
        assert set(rows[0]) == {
            "Path delay fault",
            "original (ns)",
            "final (ns)",
            "new paths",
        }

    def test_table_3_4_ordering(self):
        rows = table_3_4_rows("s298", n=4, max_faults=3)
        for row in rows:
            assert row["after TG"] <= row["final"] + 1e-9
            assert row["final"] <= row["original"] + 1e-9
            assert row["diff"] >= -1e-9


class TestChapter4Harness:
    def test_table_4_1(self):
        rows, subsequences = table_4_1_rows("s298", length=16)
        assert len(rows) == 16
        assert rows[0]["SWA(i)"] == "-"
        for k, w in subsequences:
            assert 0 <= k < w <= 16

    def test_table_4_2(self):
        rows = table_4_2_rows(("s27",))
        assert rows[0] == {"Circuit": "s27", "NPO": 1, "NPI": 4, "NSP": 3, "NSV": 3}

    def test_eligible_drivers_rule(self):
        from repro.circuits.benchmarks import get_circuit

        target = get_circuit("s298")  # 3 inputs
        assert "s344" in eligible_drivers(target, ("s344", "s27"))
        # s27 has a single output: cannot drive 3 inputs.
        assert "s27" not in eligible_drivers(target, ("s27",))

    def test_swa_func_buffers(self):
        value = swa_func_of(
            __import__("repro.circuits.benchmarks", fromlist=["get_circuit"]).get_circuit(
                "s298"
            ),
            "buffers",
            n_sequences=4,
            length=40,
        )
        assert 0 < value < 100

    def test_run_table_4_3_tiny(self):
        cases = run_table_4_3(
            targets=("s298",),
            drivers=("s344",),
            config=BuiltinGenConfig(segment_length=60, time_limit=6, rng_seed=2),
            n_sequences=4,
            func_length=40,
        )
        assert any(c.driver == "buffers" for c in cases)
        out = render_table_4_3(cases)
        assert "s298" in out
        for case in cases:
            if case.swa_func is not None:
                assert case.result.peak_swa <= case.swa_func + 1e-9


def _square(x):
    return x * x


class TestRunner:
    def test_results_in_task_order(self):
        tasks = [
            ExperimentTask(key=f"sq/{i}", fn=_square, kwargs={"x": i})
            for i in range(6)
        ]
        assert run_tasks(tasks, jobs=1) == [0, 1, 4, 9, 16, 25]

    def test_pool_matches_inline(self):
        tasks = [
            ExperimentTask(key=f"sq/{i}", fn=_square, kwargs={"x": i})
            for i in range(6)
        ]
        assert run_tasks(tasks, jobs=3) == run_tasks(tasks, jobs=1)

    def test_jobs_none_runs_inline(self):
        tasks = [ExperimentTask(key="one", fn=_square, kwargs={"x": 4})]
        assert run_tasks(tasks, jobs=None) == [16]

    def test_negative_jobs_rejected(self):
        """Negative jobs used to silently run inline; now it is an error."""
        tasks = [ExperimentTask(key="one", fn=_square, kwargs={"x": 4})]
        with pytest.raises(ValueError, match=r"-2"):
            run_tasks(tasks, jobs=-2)

    def test_derive_seed_stable_and_distinct(self):
        a = derive_seed(5, "table4.3/s298")
        assert a == derive_seed(5, "table4.3/s298")
        assert a != derive_seed(5, "table4.3/s344")
        assert a != derive_seed(6, "table4.3/s298")
        assert 0 < a < 2**31 - 1

    def test_table_4_3_parallel_identical(self):
        """jobs=2 must reproduce the jobs=1 rows exactly."""
        config = BuiltinGenConfig(
            segment_length=40, time_limit=None, rng_seed=2,
            q_limit=1, r_limit=2, max_sequences=2,
        )
        kwargs = dict(
            targets=("s298", "s344"),
            drivers=("s953",),
            config=config,
            n_sequences=2,
            func_length=30,
        )
        serial = run_table_4_3(jobs=1, **kwargs)
        parallel = run_table_4_3(jobs=2, **kwargs)
        assert serial == parallel


class TestFigures:
    def test_fig_circuits_validate(self):
        from repro.experiments.figures import (
            fig_1_3_circuit,
            fig_1_4_circuit,
            fig_2_1_circuit,
        )

        for builder in (fig_1_3_circuit, fig_1_4_circuit, fig_2_1_circuit):
            builder().validate()

    def test_tpg_summaries(self):
        from repro.circuits.benchmarks import get_circuit
        from repro.experiments.figures import tpg_summaries

        summaries = tpg_summaries(get_circuit("s298"))
        styles = {s.style for s in summaries}
        assert styles == {"reference[73]", "developed"}
        developed = next(s for s in summaries if s.style == "developed")
        assert developed.n_lfsr == 32

    def test_nonrobust_miss_exists(self):
        """The Fig 1.6/1.7 phenomenon occurs on a real benchmark."""
        from repro.circuits.benchmarks import get_circuit
        from repro.experiments.figures import find_nonrobust_miss

        found = find_nonrobust_miss(get_circuit("s298"), max_paths=60, max_tests=60)
        assert found is not None
        fault, test, missed = found
        assert missed.line in fault.path.lines
