"""Golden-string tests for the experiment text formatters.

Pins the exact rendered layout of :mod:`repro.experiments.format` and the
section helper of :mod:`repro.experiments.report`, so accidental
formatting drift in the table/report output is caught by diff rather than
by eyeball.
"""

from repro.experiments.format import render, seconds
from repro.experiments.report import _section


class TestRender:
    def test_golden_basic_table(self):
        got = render(
            "Table X",
            ["Circuit", "FC %"],
            [{"Circuit": "s27", "FC %": 46.88}, {"Circuit": "s298", "FC %": 73.6}],
        )
        assert got == (
            "Table X\n"
            "Circuit  FC % \n"
            "-------  -----\n"
            "s27      46.88\n"
            "s298     73.6 "
        )

    def test_golden_note_and_none(self):
        got = render(
            "T",
            ["A", "B"],
            [{"A": None, "B": 1}],
            note="dash means absent",
        )
        assert got == "T\nA  B\n-  -\n-  1\nnote: dash means absent"

    def test_empty_rows_header_only(self):
        got = render("T", ["Col"], [])
        assert got == "T\nCol\n---"

    def test_float_formatting_trims_zeros(self):
        got = render("T", ["V"], [{"V": 2.50}])
        assert got.splitlines()[-1] == "2.5"


class TestSeconds:
    def test_golden_values(self):
        assert seconds(0) == "0:00:00"
        assert seconds(59.4) == "0:00:59"
        assert seconds(61) == "0:01:01"
        assert seconds(3600) == "1:00:00"
        assert seconds(7325) == "2:02:05"

    def test_rounding(self):
        assert seconds(59.6) == "0:01:00"


class TestReportSection:
    def test_golden_section_shape(self):
        assert _section("Title", ["line one", "line two"]) == [
            "## Title",
            "",
            "line one",
            "line two",
            "",
        ]

    def test_empty_body(self):
        assert _section("T", []) == ["## T", "", ""]
