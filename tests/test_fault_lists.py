"""Tests for fault-list builders, including segment delay faults."""

import pytest

from repro.circuits.benchmarks import get_circuit
from repro.faults.lists import (
    all_stuck_at_faults,
    all_transition_faults,
    segment_fault_list,
    segment_paths,
    tpdf_list_all_paths,
    tpdf_list_longest_first,
    tpdfs_of_paths,
)
from repro.faults.models import FALL, RISE


class TestBasicLists:
    def test_two_faults_per_line(self):
        c = get_circuit("s27")
        assert len(all_stuck_at_faults(c)) == 2 * c.num_lines
        assert len(all_transition_faults(c)) == 2 * c.num_lines

    def test_tpdf_both_directions(self):
        c = get_circuit("s27")
        faults = tpdf_list_all_paths(c)
        assert len(faults) == 56
        directions = {f.direction for f in faults}
        assert directions == {RISE, FALL}

    def test_longest_first_ordering(self):
        c = get_circuit("s298")
        faults = tpdf_list_longest_first(c, max_paths=10)
        lengths = [f.path.length for f in faults[::2]]
        assert lengths == sorted(lengths, reverse=True)


class TestSegments:
    def test_length_one_segments_are_lines(self):
        c = get_circuit("s27")
        segs = segment_paths(c, 1)
        assert {s.lines[0] for s in segs} == set(c.lines)

    def test_length_two_segments_are_edges(self):
        c = get_circuit("s27")
        segs = segment_paths(c, 2)
        n_edges = sum(len(g.inputs) for g in c.gates.values())
        assert len(segs) == n_edges
        for s in segs:
            s.validate(c)

    def test_segments_are_valid_paths(self):
        c = get_circuit("s298")
        for s in segment_paths(c, 3)[:200]:
            s.validate(c)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            segment_paths(get_circuit("s27"), 0)

    def test_segment_fault_detection_via_tpdf_machinery(self):
        """Segment faults grade through the TPDF fault simulator."""
        import random

        from repro.faults.pdfsim import tpdf_detection_words
        from repro.logic.simulator import make_broadside_test

        c = get_circuit("s27")
        faults = segment_fault_list(c, 2)[:20]
        rng = random.Random(0)
        tests = [
            make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            for _ in range(64)
        ]
        words = tpdf_detection_words(c, faults, tests)
        assert any(w for w in words.values())

    def test_segment_detection_implies_constituent_detection(self):
        """A detected length-2 segment fault has both its transition
        faults detected by the same test (the model's defining property)."""
        import random

        from repro.faults.fsim import TransitionFaultSimulator
        from repro.faults.pdfsim import tpdf_detection_words
        from repro.logic.simulator import make_broadside_test

        c = get_circuit("s27")
        faults = segment_fault_list(c, 2)
        rng = random.Random(1)
        tests = [
            make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            for _ in range(32)
        ]
        words = tpdf_detection_words(c, faults, tests)
        sim = TransitionFaultSimulator(c)
        for fault, word in words.items():
            if not word:
                continue
            index = (word & -word).bit_length() - 1
            for tr in fault.transition_faults(c):
                assert sim.detects(tests[index], tr)
