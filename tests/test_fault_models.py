"""Tests for fault models and the Fig 1.x example circuits."""

import pytest

from repro.circuits.netlist import NetlistError
from repro.experiments.figures import fig_1_3_circuit, fig_1_4_circuit
from repro.faults.models import (
    FALL,
    Path,
    PathDelayFault,
    RISE,
    StuckAtFault,
    TransitionFault,
    TransitionPathDelayFault,
    opposite,
)


class TestTransitionFault:
    def test_rise_semantics(self):
        f = TransitionFault("c", RISE)
        assert f.initial_value == 0
        assert f.final_value == 1
        assert f.stuck_value == 0
        assert f.as_stuck_at == StuckAtFault("c", 0)

    def test_fall_semantics(self):
        f = TransitionFault("c", FALL)
        assert f.initial_value == 1
        assert f.final_value == 0
        assert f.as_stuck_at == StuckAtFault("c", 1)

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            TransitionFault("c", "sideways")

    def test_opposite(self):
        assert opposite(RISE) == FALL
        assert opposite(FALL) == RISE

    def test_str(self):
        assert str(TransitionFault("c", RISE)) == "c slow-to-rise"
        assert str(StuckAtFault("c", 0)) == "c s-a-0"


class TestPath:
    def test_fig_1_4_path_valid(self):
        c = fig_1_4_circuit()
        path = Path(lines=("a", "c", "e", "g"))
        path.validate(c)
        assert path.source == "a"
        assert path.sink == "g"
        assert path.length == 4

    def test_invalid_hop_rejected(self):
        c = fig_1_4_circuit()
        with pytest.raises(NetlistError):
            Path(lines=("a", "e")).validate(c)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path(lines=())

    def test_inversions(self):
        c = fig_1_4_circuit()  # OR - AND - OR: no inversions
        path = Path(lines=("a", "c", "e", "g"))
        assert path.inversions_to(c, 3) == 0

    def test_str(self):
        assert str(Path(lines=("a", "c"))) == "a-c"


class TestPolarity:
    def test_non_inverting_path_keeps_polarity(self):
        c = fig_1_4_circuit()
        fault = PathDelayFault(Path(lines=("a", "c", "e", "g")), RISE)
        for i in range(4):
            assert fault.on_path_transition(c, i) == (0, 1)

    def test_inverting_gate_flips_polarity(self):
        from repro.circuits.netlist import Circuit

        c = Circuit(name="inv")
        c.add_input("a")
        c.add_gate("b", "NAND", ["a", "a2"])
        c.add_input("a2")
        c.add_gate("c", "NOR", ["b", "a2"])
        c.add_output("c")
        c.validate()
        fault = PathDelayFault(Path(lines=("a", "b", "c")), RISE)
        assert fault.on_path_transition(c, 0) == (0, 1)
        assert fault.on_path_transition(c, 1) == (1, 0)  # through NAND
        assert fault.on_path_transition(c, 2) == (0, 1)  # through NOR


class TestTpdf:
    def test_constituents_match_polarity(self):
        c = fig_1_4_circuit()
        tpdf = TransitionPathDelayFault(Path(lines=("a", "c", "e", "g")), RISE)
        constituents = tpdf.transition_faults(c)
        assert [f.line for f in constituents] == ["a", "c", "e", "g"]
        assert all(f.direction == RISE for f in constituents)

    def test_falling_launch(self):
        c = fig_1_4_circuit()
        tpdf = TransitionPathDelayFault(Path(lines=("a", "c", "e", "g")), FALL)
        assert all(f.direction == FALL for f in tpdf.transition_faults(c))

    def test_as_path_delay_fault(self):
        tpdf = TransitionPathDelayFault(Path(lines=("a",)), RISE)
        assert tpdf.as_path_delay_fault == PathDelayFault(Path(lines=("a",)), RISE)

    def test_fig_1_3_example(self):
        """Fig 1.3's test values: <001, 101> on abd sensitizes a-c-e."""
        from repro.logic.simulator import simulate_comb

        c = fig_1_3_circuit()
        p1 = simulate_comb(c, {"a": 0, "b": 0, "d": 1})
        p2 = simulate_comb(c, {"a": 1, "b": 0, "d": 1})
        assert (p1["c"], p2["c"]) == (0, 1)
        assert (p1["e"], p2["e"]) == (0, 1)
