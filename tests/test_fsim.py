"""Tests for bit-parallel transition-fault simulation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.benchmarks import get_circuit
from repro.circuits.netlist import Circuit
from repro.faults.fsim import (
    FaultGrader,
    TransitionFaultSimulator,
    compact_groups,
    stuck_at_detection_words,
)
from repro.faults.lists import all_transition_faults
from repro.faults.models import FALL, RISE, StuckAtFault, TransitionFault
from repro.logic.patterns import Pattern
from repro.logic.simulator import make_broadside_test


def buf_circuit():
    """a -> n (BUF) -> PO; trivially analysable detection conditions."""
    c = Circuit(name="buf")
    c.add_input("a")
    c.add_gate("n", "BUF", ["a"])
    c.add_output("n")
    c.add_dff(q="q", d="n")
    c.validate()
    return c


class TestDetectionConditions:
    def test_rise_needs_0_then_1(self):
        c = buf_circuit()
        sim = TransitionFaultSimulator(c)
        rise = TransitionFault("n", RISE)
        t_good = make_broadside_test(c, [0], [0], [1])  # a: 0 -> 1
        t_no_launch = make_broadside_test(c, [0], [1], [1])  # a: 1 -> 1
        t_wrong_final = make_broadside_test(c, [0], [0], [0])  # a: 0 -> 0
        assert sim.detects(t_good, rise)
        assert not sim.detects(t_no_launch, rise)
        assert not sim.detects(t_wrong_final, rise)

    def test_fall_is_mirror(self):
        c = buf_circuit()
        sim = TransitionFaultSimulator(c)
        fall = TransitionFault("n", FALL)
        assert sim.detects(make_broadside_test(c, [0], [1], [0]), fall)
        assert not sim.detects(make_broadside_test(c, [0], [0], [1]), fall)

    def test_observation_via_next_state(self):
        """A fault observable only at a flop D input is still detected."""
        c = Circuit(name="ff_only")
        c.add_input("a")
        c.add_gate("n", "BUF", ["a"])
        c.add_dff(q="q", d="n")
        c.add_gate("po", "BUF", ["q"])
        c.add_output("po")
        c.validate()
        sim = TransitionFaultSimulator(c)
        t = make_broadside_test(c, [0], [0], [1])
        assert sim.detects(t, TransitionFault("n", RISE))

    def test_blocked_propagation(self):
        c = Circuit(name="blocked")
        c.add_input("a")
        c.add_input("en")
        c.add_gate("n", "AND", ["a", "en"])
        c.add_output("n")
        c.add_dff(q="q", d="n")
        c.validate()
        sim = TransitionFaultSimulator(c)
        # en = 0 in the second pattern blocks the fault effect on `a`.
        t = make_broadside_test(c, [0], [0, 1], [1, 0])
        assert not sim.detects(t, TransitionFault("a", RISE))
        t2 = make_broadside_test(c, [0], [0, 1], [1, 1])
        assert sim.detects(t2, TransitionFault("a", RISE))


class TestAgainstBruteForce:
    def test_detection_words_match_scalar_reference(self):
        """PPSFP words == scalar two-frame forced simulation, fault by fault."""
        from repro.circuits.gates import evaluate

        c = get_circuit("s27")
        rng = random.Random(11)
        tests = [
            make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            for _ in range(40)
        ]
        faults = all_transition_faults(c)
        sim = TransitionFaultSimulator(c)
        words = sim.detection_words(tests, faults)

        def scalar_values(state, pis, forced=None):
            values = dict(zip(c.inputs, pis)) | dict(zip(c.state_lines, state))
            if forced and forced[0] in values:
                values[forced[0]] = forced[1]
            for gate in c.topo_gates:
                values[gate.name] = evaluate(
                    gate.gate_type, [values[i] for i in gate.inputs]
                )
                if forced and gate.name == forced[0]:
                    values[gate.name] = forced[1]
            return values

        obs = sim.observation
        for fault in faults:
            for t_index, t in enumerate(tests):
                good1 = scalar_values(t.s1, t.v1)
                good2 = scalar_values(t.s2, t.v2)
                active = (
                    good1[fault.line] == fault.initial_value
                    and good2[fault.line] == fault.final_value
                )
                detected = False
                if active:
                    faulty2 = scalar_values(
                        t.s2, t.v2, forced=(fault.line, fault.stuck_value)
                    )
                    detected = any(faulty2[o] != good2[o] for o in obs)
                assert ((words[fault] >> t_index) & 1) == int(detected), (
                    fault,
                    t_index,
                )


class TestGrader:
    def test_preview_does_not_drop(self):
        c = get_circuit("s27")
        faults = all_transition_faults(c)
        grader = FaultGrader(c, faults)
        t = make_broadside_test(c, [0, 0, 0], [0, 0, 0, 0], [1, 1, 1, 1])
        newly = grader.preview([t])
        assert newly
        assert len(grader.remaining) == len(faults)
        grader.commit(newly)
        assert len(grader.remaining) == len(faults) - len(newly)

    def test_grade_is_preview_plus_commit(self):
        c = get_circuit("s27")
        faults = all_transition_faults(c)
        g1 = FaultGrader(c, faults)
        g2 = FaultGrader(c, faults)
        t = make_broadside_test(c, [1, 0, 1], [0, 1, 0, 1], [1, 0, 1, 0])
        newly = g1.preview([t])
        g1.commit(newly)
        assert g2.grade([t]) == newly

    def test_coverage_monotone(self):
        c = get_circuit("s27")
        rng = random.Random(3)
        grader = FaultGrader(c, all_transition_faults(c))
        last = 0.0
        for _ in range(5):
            t = make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            grader.grade([t])
            assert grader.coverage >= last
            last = grader.coverage

    def test_empty_fault_list(self):
        c = get_circuit("s27")
        grader = FaultGrader(c, [])
        assert grader.coverage == 0.0
        assert grader.grade([]) == set()


class TestStuckAt:
    def test_simple_detection(self):
        c = buf_circuit()
        faults = [StuckAtFault("n", 0), StuckAtFault("n", 1)]
        patterns = [Pattern(state=(0,), pi=(1,)), Pattern(state=(0,), pi=(0,))]
        words = stuck_at_detection_words(c, patterns, faults)
        assert words[StuckAtFault("n", 0)] == 0b01  # detected by a=1
        assert words[StuckAtFault("n", 1)] == 0b10  # detected by a=0

    def test_no_patterns(self):
        c = buf_circuit()
        words = stuck_at_detection_words(c, [], [StuckAtFault("n", 0)])
        assert words[StuckAtFault("n", 0)] == 0


class TestCompaction:
    def test_preserves_coverage(self):
        detections = [{1, 2}, {2, 3}, {3}, {4}, set()]
        result = compact_groups(detections)
        covered = set()
        for i in result.kept:
            covered |= detections[i]
        assert covered == {1, 2, 3, 4}
        assert result.faults_covered == 4

    def test_drops_redundant(self):
        detections = [{1}, {1}, {1, 2}]
        result = compact_groups(detections)
        assert result.kept == (2,)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.sets(st.integers(0, 10), max_size=5), min_size=0, max_size=8
        )
    )
    def test_property_coverage_preserved(self, detections):
        result = compact_groups(detections)
        union_all = set().union(*detections) if detections else set()
        covered = set().union(*(detections[i] for i in result.kept)) if result.kept else set()
        assert covered == union_all
        assert sorted(result.kept) == list(result.kept)


class TestTestSetCompaction:
    def test_coverage_preserved(self):
        import random

        from repro.faults.fsim import TransitionFaultSimulator, compact_test_set
        from repro.faults.lists import all_transition_faults

        c = get_circuit("s298")
        faults = all_transition_faults(c)
        rng = random.Random(12)
        tests = [
            make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            for _ in range(120)
        ]
        sim = TransitionFaultSimulator(c)
        before = sim.detected_faults(tests, faults)
        compacted = compact_test_set(c, tests, faults)
        after = sim.detected_faults(compacted, faults)
        assert after == before
        assert len(compacted) < len(tests)  # random sets are redundant

    def test_empty_inputs(self):
        from repro.faults.fsim import compact_test_set

        c = get_circuit("s27")
        assert compact_test_set(c, [], []) == []
