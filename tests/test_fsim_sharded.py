"""Tests for fault-sharded grading (``FaultGrader(shards=N)``)."""

import random

import pytest

from repro import obs
from repro.circuits.benchmarks import get_circuit
from repro.faults.collapse import collapsed_transition_faults
from repro.faults.fsim import (
    MIN_FAULTS_PER_SHARD,
    FaultGrader,
    partition_shards,
)
from repro.logic.simulator import make_broadside_test
from repro.resilience import faultpoints


@pytest.fixture(autouse=True)
def _disarmed_faultpoints():
    faultpoints.install(None)
    yield
    faultpoints.install(None)


def random_tests(circuit, n, seed=7):
    rng = random.Random(seed)
    return [
        make_broadside_test(
            circuit,
            [rng.randint(0, 1) for _ in circuit.flops],
            [rng.randint(0, 1) for _ in circuit.inputs],
            [rng.randint(0, 1) for _ in circuit.inputs],
        )
        for _ in range(n)
    ]


class TestPartition:
    def test_partitions_are_contiguous_and_cover(self):
        items = list(range(10))
        shards = partition_shards(items, 4)
        assert [len(s) for s in shards] == [3, 3, 2, 2]
        assert [x for s in shards for x in s] == items

    def test_more_shards_than_items(self):
        assert partition_shards([1, 2], 5) == [[1], [2]]

    def test_single_shard_is_identity(self):
        assert partition_shards([1, 2, 3], 1) == [[1, 2, 3]]

    def test_empty(self):
        assert partition_shards([], 3) == []

    def test_sizes_differ_by_at_most_one(self):
        for n in range(1, 40):
            for k in range(1, 9):
                sizes = [len(s) for s in partition_shards(list(range(n)), k)]
                assert sum(sizes) == n
                assert max(sizes) - min(sizes) <= 1
                assert 0 not in sizes


class TestShardedEqualsSerial:
    @pytest.fixture(scope="class")
    def setup(self):
        c = get_circuit("s298")
        faults = collapsed_transition_faults(c)
        tests = random_tests(c, 48)
        serial = FaultGrader(c, faults).preview(tests)
        return c, faults, tests, serial

    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_preview_identical(self, setup, shards):
        c, faults, tests, serial = setup
        with FaultGrader(c, faults, shards=shards) as grader:
            assert grader.preview(tests) == serial

    def test_preview_groups_identical(self, setup):
        c, faults, tests, _ = setup
        groups = [tests[:20], [], tests[20:35], tests[35:]]
        serial_groups = FaultGrader(c, faults).preview_groups(groups)
        with FaultGrader(c, faults, shards=4) as grader:
            assert grader.preview_groups(groups) == serial_groups

    def test_jobs_caps_workers_not_results(self, setup):
        c, faults, tests, serial = setup
        with FaultGrader(c, faults, shards=4, jobs=2) as grader:
            assert grader.preview(tests) == serial

    def test_commit_after_sharded_preview(self, setup):
        """Fault dropping stays consistent when previews are sharded."""
        c, faults, tests, _ = setup
        plain = FaultGrader(c, faults)
        with FaultGrader(c, faults, shards=2) as sharded:
            for batch in (tests[:24], tests[24:]):
                expect = plain.preview(batch)
                got = sharded.preview(batch)
                assert got == expect
                plain.commit(batch)
                sharded.commit(batch)
                assert sharded.remaining == plain.remaining
                assert sharded.detected == plain.detected


class TestFallbacks:
    def test_invalid_shards_rejected(self):
        c = get_circuit("s27")
        with pytest.raises(ValueError):
            FaultGrader(c, [], shards=0)
        with pytest.raises(ValueError):
            FaultGrader(c, [], shards=2, jobs=0)

    def test_small_frontier_grades_inline(self):
        c = get_circuit("s27")
        faults = collapsed_transition_faults(c)
        tests = random_tests(c, 16)
        grader = FaultGrader(c, faults, shards=4)
        assert len(faults) < 4 * MIN_FAULTS_PER_SHARD
        try:
            serial = FaultGrader(c, faults).preview(tests)
            assert grader.preview(tests) == serial
            assert grader._pool is None  # never fanned out
        finally:
            grader.close()

    def test_shards_1_never_pools(self):
        c = get_circuit("s298")
        faults = collapsed_transition_faults(c)
        grader = FaultGrader(c, faults)
        grader.preview(random_tests(c, 8))
        assert grader._pool is None


class TestCrashRecovery:
    def test_crashed_shard_retries_to_identical_result(self):
        c = get_circuit("s298")
        faults = collapsed_transition_faults(c)
        tests = random_tests(c, 32)
        serial = FaultGrader(c, faults).preview(tests)

        faultpoints.install("runner.task:fsim.shard/0:crash_once")
        obs.enable()
        obs.reset()
        try:
            with FaultGrader(c, faults, shards=2) as grader:
                assert grader.preview(tests) == serial
            counters = obs.registry().snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
        assert counters.get("runner.worker_crashes", 0) == 1
        assert counters.get("runner.retries", 0) == 1
        assert counters.get("fsim.shard.inline_recoveries", 0) == 0

    def test_exhausted_shard_regrades_inline(self):
        """A shard that always crashes degrades to inline grading, not loss."""
        c = get_circuit("s298")
        faults = collapsed_transition_faults(c)
        tests = random_tests(c, 32)
        serial = FaultGrader(c, faults).preview(tests)

        faultpoints.install("runner.task:fsim.shard/1:crash")
        obs.enable()
        obs.reset()
        try:
            with FaultGrader(c, faults, shards=2) as grader:
                assert grader.preview(tests) == serial
            counters = obs.registry().snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
        assert counters.get("fsim.shard.inline_recoveries", 0) == 1
        assert counters.get("runner.task_failures", 0) == 1


class TestObservability:
    def test_shard_metrics_and_worker_merge(self):
        c = get_circuit("s298")
        faults = collapsed_transition_faults(c)
        tests = random_tests(c, 32)
        obs.enable()
        obs.reset()
        try:
            with FaultGrader(c, faults, shards=2) as grader:
                grader.preview(tests)
            snap = obs.registry().snapshot()
            counters = snap["counters"]
        finally:
            obs.disable()
            obs.reset()
        assert counters.get("fsim.shard.passes", 0) == 1
        assert counters.get("fsim.shard.tasks", 0) == 2
        # Worker-side PPSFP metrics were merged back into the parent.
        assert any(k.startswith("fsim.") and "shard" not in k for k in counters)
        hist = snap["histograms"].get("fsim.shard.faults_per_shard")
        assert hist is not None and hist["count"] == 2
