"""Tests for functional broadside test generation helpers."""

import pytest

from repro.bist.tpg import DevelopedTpg
from repro.circuits.benchmarks import get_circuit
from repro.core.functional import (
    functional_segment,
    is_functional,
    reachable_states,
)
from repro.logic.simulator import verify_broadside


@pytest.fixture(scope="module")
def s298_segment():
    c = get_circuit("s298")
    tpg = DevelopedTpg.for_circuit(c)
    return c, tpg, functional_segment(c, tpg, seed=21, length=60, initial_state=[0] * 14)


class TestFunctionalSegment:
    def test_tests_are_broadside_consistent(self, s298_segment):
        c, _, segment = s298_segment
        assert segment.tests
        for t in segment.tests:
            assert verify_broadside(c, t)

    def test_scan_in_states_reachable(self, s298_segment):
        """Every test's s1 lies on the simulated functional trajectory."""
        c, _, segment = s298_segment
        trajectory = set(segment.result.states)
        known = trajectory | {tuple([0] * 14)}
        for t in segment.tests:
            assert is_functional(c, t, known)

    def test_spacing_avoids_overlap(self, s298_segment):
        _, _, segment = s298_segment
        cycles = [t.source_cycle for t in segment.tests]
        assert all(b - a >= 2 for a, b in zip(cycles, cycles[1:]))

    def test_final_state(self, s298_segment):
        _, _, segment = s298_segment
        assert segment.final_state == segment.result.states[segment.length]

    def test_s2_reachable_too(self, s298_segment):
        """The second state of a functional broadside test is reachable."""
        c, _, segment = s298_segment
        trajectory = set(segment.result.states)
        for t in segment.tests:
            assert tuple(t.s2) in trajectory


class TestReachableStates:
    def test_contains_initial(self):
        c = get_circuit("s27")
        states = reachable_states(c, [0, 0, 0], [[[0, 0, 0, 0]]])
        assert (0, 0, 0) in states

    def test_grows_with_sequences(self):
        import random

        c = get_circuit("s298")
        rng = random.Random(1)
        seqs = [
            [[rng.randint(0, 1) for _ in c.inputs] for _ in range(30)]
            for _ in range(4)
        ]
        one = reachable_states(c, [0] * 14, seqs[:1])
        all_four = reachable_states(c, [0] * 14, seqs)
        assert one <= all_four

    def test_is_functional_rejects_unreachable(self):
        c = get_circuit("s27")
        from repro.logic.simulator import make_broadside_test

        t = make_broadside_test(c, [1, 1, 1], [0, 0, 0, 0], [0, 0, 0, 0])
        assert not is_functional(c, t, {(0, 0, 0)})
