"""Unit and property tests for gate primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.gates import (
    COMBINATIONAL_TYPES,
    GateType,
    controlling_value,
    evaluate,
    evaluate_word,
    inversion_parity,
    is_inverting,
    noncontrolling_value,
    parse_gate_type,
)
from repro.logic.values import ONE, X, ZERO

MULTI_INPUT = [t for t in COMBINATIONAL_TYPES if t not in (GateType.BUF, GateType.NOT)]


class TestProperties:
    def test_controlling_values(self):
        assert controlling_value(GateType.AND) == ZERO
        assert controlling_value(GateType.NAND) == ZERO
        assert controlling_value(GateType.OR) == ONE
        assert controlling_value(GateType.NOR) == ONE
        assert controlling_value(GateType.XOR) is None
        assert controlling_value(GateType.BUF) is None

    def test_noncontrolling_values(self):
        assert noncontrolling_value(GateType.AND) == ONE
        assert noncontrolling_value(GateType.NOR) == ZERO
        assert noncontrolling_value(GateType.XNOR) is None

    def test_inversion(self):
        assert is_inverting(GateType.NOT)
        assert is_inverting(GateType.NAND)
        assert is_inverting(GateType.NOR)
        assert is_inverting(GateType.XNOR)
        assert not is_inverting(GateType.AND)
        assert inversion_parity(GateType.NAND) == 1
        assert inversion_parity(GateType.OR) == 0

    def test_parse_aliases(self):
        assert parse_gate_type("buff") == GateType.BUF
        assert parse_gate_type("INV") == GateType.NOT
        assert parse_gate_type("nand") == GateType.NAND
        with pytest.raises(ValueError):
            parse_gate_type("MAJ")


class TestEvaluate:
    def test_controlling_input_dominates_x(self):
        assert evaluate(GateType.AND, [ZERO, X]) == ZERO
        assert evaluate(GateType.NAND, [ZERO, X]) == ONE
        assert evaluate(GateType.OR, [ONE, X]) == ONE
        assert evaluate(GateType.NOR, [ONE, X]) == ZERO

    def test_xor_with_x_is_x(self):
        assert evaluate(GateType.XOR, [ONE, X]) == X
        assert evaluate(GateType.XNOR, [X, ZERO]) == X

    def test_single_input_gates(self):
        assert evaluate(GateType.BUF, [ONE]) == ONE
        assert evaluate(GateType.NOT, [ONE]) == ZERO

    def test_input_dff_not_evaluable(self):
        with pytest.raises(ValueError):
            evaluate(GateType.INPUT, [ONE])
        with pytest.raises(ValueError):
            evaluate(GateType.DFF, [ONE])


@given(
    gate_type=st.sampled_from(MULTI_INPUT),
    vectors=st.lists(
        st.lists(st.integers(0, 1), min_size=2, max_size=4),
        min_size=1,
        max_size=8,
    ).filter(lambda vs: len({len(v) for v in vs}) == 1),
)
def test_word_eval_matches_scalar(gate_type, vectors):
    """evaluate_word over packed patterns == per-pattern evaluate."""
    n = len(vectors)
    fanin = len(vectors[0])
    mask = (1 << n) - 1
    words = []
    for j in range(fanin):
        w = 0
        for t, vec in enumerate(vectors):
            if vec[j]:
                w |= 1 << t
        words.append(w)
    packed = evaluate_word(gate_type, words, mask)
    for t, vec in enumerate(vectors):
        assert (packed >> t) & 1 == evaluate(gate_type, vec)


@given(st.lists(st.integers(0, 1), min_size=1, max_size=8))
def test_word_eval_unary(bits):
    n = len(bits)
    mask = (1 << n) - 1
    word = sum(b << i for i, b in enumerate(bits))
    assert evaluate_word(GateType.BUF, [word], mask) == word
    assert evaluate_word(GateType.NOT, [word], mask) == word ^ mask
