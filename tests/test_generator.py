"""Tests for the synthetic benchmark generator."""

import random

import pytest

from repro.circuits.benchmarks import available, entry, get_circuit
from repro.circuits.generator import GeneratorSpec, generate
from repro.logic.bitsim import PatternSimulator, pack_vectors


def spec(**kw):
    base = dict(name="t", n_inputs=5, n_outputs=4, n_flops=6, n_gates=80)
    base.update(kw)
    return GeneratorSpec(**base)


class TestGenerate:
    def test_deterministic(self):
        a = generate(spec())
        b = generate(spec())
        assert [(g.name, g.gate_type, g.inputs) for g in a.topo_gates] == [
            (g.name, g.gate_type, g.inputs) for g in b.topo_gates
        ]

    def test_seed_changes_circuit(self):
        a = generate(spec(seed=0))
        b = generate(spec(seed=1))
        assert [(g.name, g.inputs) for g in a.topo_gates] != [
            (g.name, g.inputs) for g in b.topo_gates
        ]

    def test_interface_counts(self):
        c = generate(spec())
        assert len(c.inputs) == 5
        assert len(c.outputs) == 4
        assert len(c.flops) == 6
        assert c.num_gates == 80

    def test_validates(self):
        generate(spec()).validate()

    def test_depth_is_realistic(self):
        c = generate(spec(n_gates=200))
        assert 4 <= c.depth <= 30

    def test_too_few_gates_rejected(self):
        with pytest.raises(ValueError):
            generate(spec(n_gates=2))

    def test_state_feeds_logic(self):
        c = generate(spec())
        used = {i for g in c.gates.values() for i in g.inputs}
        assert any(q in used for q in c.state_lines)

    def test_few_constant_lines(self):
        """Signature screening keeps degenerate logic rare."""
        c = generate(spec(n_gates=150))
        rng = random.Random(1)
        n = 512
        vecs = [[rng.randint(0, 1) for _ in c.comb_input_lines] for _ in range(n)]
        vals = PatternSimulator(c).run(pack_vectors(vecs, c.comb_input_lines), n)
        mask = (1 << n) - 1
        constant = [l for l in c.lines if vals[l] in (0, mask)]
        assert len(constant) <= 0.1 * c.num_lines


class TestRegistry:
    def test_available_nonempty(self):
        names = available()
        assert "s27" in names and "s298" in names and "b14" in names

    def test_family_filter(self):
        assert set(available("itc99")) == {"b11", "b12", "b14", "b20"}

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            entry("s99999")

    def test_s27_is_real(self):
        assert not entry("s27").synthetic
        c = get_circuit("s27")
        assert c.num_gates == 10

    def test_cached(self):
        assert get_circuit("s298") is get_circuit("s298")

    def test_synthetic_matches_registry(self):
        e = entry("s344")
        c = get_circuit("s344")
        assert len(c.inputs) == e.n_inputs
        assert len(c.flops) == e.n_flops
        assert c.num_gates == e.n_gates

    def test_buffers_block(self):
        from repro.circuits.benchmarks import make_buffers_block

        target = get_circuit("s298")
        block = make_buffers_block(target)
        assert len(block.outputs) == len(target.inputs)
        assert len(block.flops) == 0


class TestGeneratorFuzz:
    """Hypothesis fuzzing: any legal spec yields a valid, simulable circuit."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        n_inputs=st.integers(1, 12),
        n_outputs=st.integers(1, 8),
        n_flops=st.integers(0, 10),
        n_gates=st.integers(12, 120),
        seed=st.integers(0, 5),
    )
    def test_random_specs_valid(self, n_inputs, n_outputs, n_flops, n_gates, seed):
        from repro.logic.simulator import simulate_sequence

        spec = GeneratorSpec(
            name="fuzz",
            n_inputs=n_inputs,
            n_outputs=n_outputs,
            n_flops=n_flops,
            n_gates=n_gates,
            seed=seed,
        )
        c = generate(spec)
        c.validate()
        assert len(c.inputs) == n_inputs
        assert len(c.flops) == n_flops
        assert c.num_gates == n_gates
        # The circuit must simulate from reset without errors.
        res = simulate_sequence(c, [0] * n_flops, [[1] * n_inputs, [0] * n_inputs])
        assert len(res.states) == 3
