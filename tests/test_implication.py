"""Tests for the implication engine and necessary assignments."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.implication import binary_only, imply, merge_assignments
from repro.circuits.netlist import Circuit
from repro.logic.values import ONE, X, ZERO


def mk(gates):
    """Build a small circuit: gates = [(name, type, inputs)]."""
    c = Circuit(name="mk")
    declared = set()
    for name, _, inputs in gates:
        for i in inputs:
            if i not in declared and all(i != g[0] for g in gates):
                if i not in c.inputs:
                    c.add_input(i)
                declared.add(i)
    for name, gtype, inputs in gates:
        c.add_gate(name, gtype, inputs)
    c.add_output(gates[-1][0])
    c.validate()
    return c


class TestForward:
    def test_and_forward(self):
        c = mk([("o", "AND", ["a", "b"])])
        values = imply(c, {"a": 1, "b": 1})
        assert values["o"] == ONE

    def test_conflict_detected(self):
        c = mk([("o", "AND", ["a", "b"])])
        assert imply(c, {"a": 0, "o": 1}) is None

    def test_unknown_line_rejected(self):
        c = mk([("o", "AND", ["a", "b"])])
        with pytest.raises(KeyError):
            imply(c, {"ghost": 1})


class TestBackward:
    def test_and_output_one_forces_inputs(self):
        c = mk([("o", "AND", ["a", "b"])])
        values = imply(c, {"o": 1})
        assert values["a"] == ONE and values["b"] == ONE

    def test_and_output_zero_last_unknown(self):
        c = mk([("o", "AND", ["a", "b"])])
        values = imply(c, {"o": 0, "a": 1})
        assert values["b"] == ZERO

    def test_and_output_zero_ambiguous(self):
        c = mk([("o", "AND", ["a", "b"])])
        values = imply(c, {"o": 0})
        assert values["a"] == X and values["b"] == X

    def test_nor_output_one_forces_inputs(self):
        c = mk([("o", "NOR", ["a", "b"])])
        values = imply(c, {"o": 1})
        assert values["a"] == ZERO and values["b"] == ZERO

    def test_nand_output_zero_forces_inputs(self):
        c = mk([("o", "NAND", ["a", "b"])])
        values = imply(c, {"o": 0})
        assert values["a"] == ONE and values["b"] == ONE

    def test_or_output_one_last_unknown(self):
        c = mk([("o", "OR", ["a", "b"])])
        values = imply(c, {"o": 1, "b": 0})
        assert values["a"] == ONE

    def test_not_bidirectional(self):
        c = mk([("o", "NOT", ["a"])])
        assert imply(c, {"o": 1})["a"] == ZERO
        assert imply(c, {"a": 1})["o"] == ZERO

    def test_xor_last_unknown(self):
        c = mk([("o", "XOR", ["a", "b"])])
        values = imply(c, {"o": 1, "a": 1})
        assert values["b"] == ZERO
        values = imply(c, {"o": 1, "a": 0})
        assert values["b"] == ONE

    def test_xnor_last_unknown(self):
        c = mk([("o", "XNOR", ["a", "b"])])
        assert imply(c, {"o": 1, "a": 1})["b"] == ONE

    def test_chained_implication(self):
        c = mk([("m", "AND", ["a", "b"]), ("o", "OR", ["m", "cc"])])
        values = imply(c, {"o": 0})
        # o = 0 -> m = 0 and cc = 0; m = 0 alone does not force a/b.
        assert values["m"] == ZERO and values["cc"] == ZERO
        assert values["a"] == X

    def test_reconvergence_conflict(self):
        # o = AND(a, na) with na = NOT(a): o = 1 is impossible.
        c = Circuit(name="rc")
        c.add_input("a")
        c.add_gate("na", "NOT", ["a"])
        c.add_gate("o", "AND", ["a", "na"])
        c.add_output("o")
        c.validate()
        assert imply(c, {"o": 1}) is None


class TestFixpoint:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_idempotent_and_sound(self, data):
        """imply(imply(A)) == imply(A), and any full extension is consistent."""
        from repro.circuits.benchmarks import get_circuit
        from repro.logic.simulator import simulate_comb

        c = get_circuit("s27")
        seed = {}
        for line in data.draw(
            st.lists(st.sampled_from(c.comb_input_lines), max_size=4, unique=True)
        ):
            seed[line] = data.draw(st.integers(0, 1))
        values = imply(c, seed)
        assert values is not None  # input-only seeds never conflict
        again = imply(c, binary_only(values))
        assert again == values
        # Soundness: complete the inputs arbitrarily; simulation must agree
        # with every implied value.
        full = {
            line: values[line] if values[line] != X else data.draw(st.integers(0, 1))
            for line in c.comb_input_lines
        }
        sim = simulate_comb(c, full)
        for line, v in values.items():
            if v != X and line in c.gates:
                # The implied value must be produced whenever implications
                # were forced; forward-implied gates must match exactly.
                pass
        for line in c.comb_input_lines:
            if values[line] != X:
                assert sim[line] == values[line]


class TestMerge:
    def test_merge_disjoint(self):
        assert merge_assignments({"a": 1}, {"b": 0}) == {"a": 1, "b": 0}

    def test_merge_agreeing(self):
        assert merge_assignments({"a": 1}, {"a": 1}) == {"a": 1}

    def test_merge_conflict(self):
        assert merge_assignments({"a": 1}, {"a": 0}) is None

    def test_merge_ignores_x(self):
        assert merge_assignments({"a": X}, {"a": 1}) == {"a": 1}

    def test_binary_only(self):
        assert binary_only({"a": 1, "b": X, "c": 0}) == {"a": 1, "c": 0}
