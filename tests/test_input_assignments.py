"""Tests for input necessary assignments (Section 3.2)."""

import itertools

import pytest

from repro.atpg.input_assignments import (
    POTENTIALLY_DETECTABLE,
    UNDETECTABLE,
    compute_input_assignments,
    transition_fault_na,
)
from repro.atpg.unroll import TwoFrameModel
from repro.circuits.benchmarks import get_circuit
from repro.experiments.figures import fig_2_1_circuit
from repro.faults.lists import tpdf_list_all_paths
from repro.faults.models import Path, RISE, TransitionFault, TransitionPathDelayFault
from repro.faults.pdfsim import tpdf_detection_words
from repro.logic.simulator import make_broadside_test


@pytest.fixture(scope="module")
def s27_model():
    return TwoFrameModel.build(get_circuit("s27"))


class TestSteps:
    def test_fig_2_1_step2_conflict(self):
        c = fig_2_1_circuit()
        model = TwoFrameModel.build(c)
        fault = TransitionPathDelayFault(Path(lines=("c", "d", "e")), RISE)
        result = compute_input_assignments(model, fault, step4=False)
        assert result.status == UNDETECTABLE

    def test_step1_uses_undetectable_set(self, s27_model):
        fault = tpdf_list_all_paths(s27_model.base)[0]
        tr = fault.transition_faults(s27_model.base)[0]
        result = compute_input_assignments(
            s27_model, fault, undetectable_transition_faults={tr}
        )
        assert result.status == UNDETECTABLE

    def test_transition_fault_na_inputs(self, s27_model):
        na = transition_fault_na(s27_model, TransitionFault("G14", RISE))
        assert na is not None
        # G14 = NOT(G0): backward implication determines G0 in both frames.
        assert na["G0@1"] == 1 and na["G0@2"] == 0


class TestSoundness:
    """Necessity is w.r.t. *path-sensitized* TPDF detection.

    Step 3 adds the off-path non-controlling conditions of [16]: they are
    necessary for detecting the fault *through the path* (at least weak
    non-robust sensitization), the detection notion Chapter 3's selection
    uses -- not for the bare all-constituents-detected conjunction.
    """

    def _sensitized_detecting_tests(self, c, fault, tests, words):
        from repro.faults.pdfsim import classify_test

        pdf = fault.as_path_delay_fault
        return [
            tests[i]
            for i in range(len(tests))
            if (words[fault] >> i) & 1 and classify_test(c, pdf, tests[i]) is not None
        ]

    def test_assignments_hold_in_every_sensitized_detecting_test(self, s27_model):
        c = s27_model.base
        faults = tpdf_list_all_paths(c)
        tests = [
            make_broadside_test(c, s1, v1, v2)
            for s1 in itertools.product((0, 1), repeat=3)
            for v1 in itertools.product((0, 1), repeat=4)
            for v2 in itertools.product((0, 1), repeat=4)
        ]
        words = tpdf_detection_words(c, faults, tests)
        checked = 0
        for fault in faults:
            detecting = self._sensitized_detecting_tests(c, fault, tests, words)
            if not detecting:
                continue
            result = compute_input_assignments(s27_model, fault)
            assert result.status == POTENTIALLY_DETECTABLE, fault
            for (name, frame), value in result.input_assignments.items():
                for t in detecting:
                    if name in c.inputs:
                        idx = c.inputs.index(name)
                        actual = t.v1[idx] if frame == 1 else t.v2[idx]
                    else:
                        idx = c.state_lines.index(name)
                        actual = t.s1[idx] if frame == 1 else t.s2[idx]
                    assert actual == value, (fault, name, frame)
            checked += 1
        assert checked > 5

    def test_undetectable_claims_sound(self, s27_model):
        """No fault with a sensitized detecting test is screened out."""
        c = s27_model.base
        faults = tpdf_list_all_paths(c)
        tests = [
            make_broadside_test(c, s1, v1, v2)
            for s1 in itertools.product((0, 1), repeat=3)
            for v1 in itertools.product((0, 1), repeat=4)
            for v2 in itertools.product((0, 1), repeat=4)
        ]
        words = tpdf_detection_words(c, faults, tests)
        for fault in faults:
            result = compute_input_assignments(s27_model, fault)
            if result.status == UNDETECTABLE:
                sensitized = self._sensitized_detecting_tests(
                    c, fault, tests, words
                )
                assert not sensitized, fault


class TestPairs:
    def test_paired_inputs_only_fully_specified(self, s27_model):
        faults = tpdf_list_all_paths(s27_model.base)
        for fault in faults[:10]:
            result = compute_input_assignments(s27_model, fault)
            if result.undetectable:
                continue
            pairs = result.paired_inputs()
            for name, (v1, v2) in pairs.items():
                assert result.input_assignments[(name, 1)] == v1
                assert result.input_assignments[(name, 2)] == v2

    def test_step4_only_adds_assignments(self, s27_model):
        faults = tpdf_list_all_paths(s27_model.base)
        compared = 0
        for fault in faults:
            without = compute_input_assignments(s27_model, fault, step4=False)
            with4 = compute_input_assignments(s27_model, fault, step4=True)
            if without.undetectable or with4.undetectable:
                continue
            assert set(without.input_assignments) <= set(with4.input_assignments)
            for key, v in without.input_assignments.items():
                assert with4.input_assignments[key] == v
            compared += 1
        assert compared > 0
