"""Cross-kernel identity: the numpy array backend against the word kernel.

The array kernel (``--kernel array`` / ``REPRO_KERNEL=array``, and any
``--lanes`` width above 64) must be a pure throughput knob: every packed
trajectory, every accepted segment, and every detection word must be
bit-identical to the packed 64-lane word kernel, which in turn is pinned
against the scalar oracle elsewhere.  These tests hold that contract
lane by lane on ``simulate_packed_arrays``, end to end on the Fig 4.9
construction loop at 128/256 lanes, and on PPSFP fault grading.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.benchmarks import get_circuit
from repro.circuits.generator import GeneratorSpec, generate
from repro.cli import main
from repro.core import kernel
from repro.core.builtin_gen import BuiltinGenConfig, BuiltinGenerator
from repro.core.compiled import compile_circuit
from repro.faults.collapse import collapsed_transition_faults
from repro.faults.fsim import TransitionFaultSimulator
from repro.logic.bitsim import (
    lane_mask_row,
    simulate_packed_arrays,
    simulate_packed_words,
    unpack_lane_bits,
    unpack_lane_bits_array,
)
from repro.logic.simulator import make_broadside_test


@pytest.fixture(autouse=True)
def _reset_kernel(monkeypatch):
    """Keep kernel selection hermetic: no env or configure leaks out."""
    monkeypatch.delenv(kernel.ENV_VAR, raising=False)
    yield
    kernel.configure(None)


class TestKernelSelection:
    def test_validate_kernel(self):
        assert kernel.validate_kernel(None) is None
        assert kernel.validate_kernel("word") == "word"
        assert kernel.validate_kernel("array") == "array"
        with pytest.raises(ValueError, match="unknown kernel 'simd'"):
            kernel.validate_kernel("simd")

    def test_validate_lanes(self):
        assert kernel.validate_lanes(None) is None
        assert kernel.validate_lanes(64) == 64
        assert kernel.validate_lanes(256) == 256
        with pytest.raises(ValueError, match="positive multiple of 64"):
            kernel.validate_lanes(0)
        with pytest.raises(ValueError, match="positive multiple of 64"):
            kernel.validate_lanes(-64)
        with pytest.raises(ValueError, match="multiple of 64, got 100"):
            kernel.validate_lanes(100)

    def test_active_resolution_order(self, monkeypatch):
        assert kernel.active() == "word"
        monkeypatch.setenv(kernel.ENV_VAR, "array")
        assert kernel.active() == "array"
        kernel.configure("word")  # explicit configure beats the env
        assert kernel.active() == "word"
        kernel.configure(None)  # reverting falls back to the env
        assert kernel.active() == "array"

    def test_configure_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernel.configure("bogus")
        assert kernel.active() == "word"


def _lane_bits_to_words(bits, n_lanes):
    """Pack per-lane bits into the word-kernel and array-kernel forms."""
    length = len(bits)
    n_inputs = len(bits[0]) if length else 0
    n_words = (n_lanes + 63) // 64
    arr = np.zeros((length, n_inputs, n_words), dtype=np.uint64)
    for i in range(length):
        for j in range(n_inputs):
            for t, b in enumerate(bits[i][j]):
                if b:
                    arr[i, j, t // 64] |= np.uint64(1) << np.uint64(t % 64)
    return arr


def _assert_lanes_match(circuit, packed_a, init, arr, n_lanes, length, hold_idx):
    """Every 64-lane chunk of an array run equals its word-kernel run."""
    cc = compile_circuit(circuit)
    n_inputs = len(circuit.inputs)
    for c0 in range((n_lanes + 63) // 64):
        lanes = min(64, n_lanes - c0 * 64)
        pi_rows = [
            [int(arr[i, j, c0]) for j in range(n_inputs)] for i in range(length)
        ]
        packed_w = simulate_packed_words(
            circuit, init, pi_rows, lanes,
            hold_indices=hold_idx, compiled=cc,
        )
        np.testing.assert_array_equal(
            packed_a.switching_counts[:, c0 * 64 : c0 * 64 + lanes],
            packed_w.switching_counts,
        )
        for t in range(lanes):
            word_states = packed_w.lane_states(t, length)
            for cyc in range(length + 1):
                assert packed_a.lane_state(cyc, c0 * 64 + t) == word_states[cyc]


class TestArrayMatchesWords:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_lanes=st.integers(1, 200),
        use_hold=st.booleans(),
    )
    def test_lane_by_lane_identity(self, seed, n_lanes, use_hold):
        """simulate_packed_arrays == simulate_packed_words per 64-lane chunk."""
        c = get_circuit("s298")
        rng = random.Random(seed)
        length = 9
        init = [rng.randint(0, 1) for _ in c.flops]
        bits = [
            [[rng.randint(0, 1) for _ in range(n_lanes)] for _ in c.inputs]
            for _ in range(length)
        ]
        arr = _lane_bits_to_words(bits, n_lanes)
        hold_idx = [0, 2, 5] if use_hold else None
        packed_a = simulate_packed_arrays(
            c, init, arr, n_lanes, hold_indices=hold_idx
        )
        _assert_lanes_match(c, packed_a, init, arr, n_lanes, length, hold_idx)

    def test_random_circuit_cross_check(self):
        spec = GeneratorSpec(
            name="kernel-mini", n_inputs=5, n_outputs=3, n_flops=6, n_gates=60
        )
        c = generate(spec)
        rng = random.Random(11)
        n_lanes, length = 130, 7
        init = [rng.randint(0, 1) for _ in c.flops]
        bits = [
            [[rng.randint(0, 1) for _ in range(n_lanes)] for _ in c.inputs]
            for _ in range(length)
        ]
        arr = _lane_bits_to_words(bits, n_lanes)
        packed_a = simulate_packed_arrays(c, init, arr, n_lanes)
        _assert_lanes_match(c, packed_a, init, arr, n_lanes, length, None)

    def test_count_lines_subset(self):
        c = get_circuit("s298")
        rng = random.Random(4)
        n_lanes, length = 96, 6
        init = [0] * len(c.flops)
        bits = [
            [[rng.randint(0, 1) for _ in range(n_lanes)] for _ in c.inputs]
            for _ in range(length)
        ]
        arr = _lane_bits_to_words(bits, n_lanes)
        sub_a = simulate_packed_arrays(
            c, init, arr, n_lanes, count_lines=c.inputs
        )
        cc = compile_circuit(c)
        for c0 in range(2):
            lanes = min(64, n_lanes - c0 * 64)
            pi_rows = [
                [int(arr[i, j, c0]) for j in range(len(c.inputs))]
                for i in range(length)
            ]
            sub_w = simulate_packed_words(
                c, init, pi_rows, lanes, count_lines=c.inputs, compiled=cc
            )
            np.testing.assert_array_equal(
                sub_a.switching_counts[:, c0 * 64 : c0 * 64 + lanes],
                sub_w.switching_counts,
            )

    def test_mask_row_partial_top_word(self):
        row = lane_mask_row(70)
        assert row.shape == (2,)
        assert int(row[0]) == 0xFFFFFFFFFFFFFFFF
        assert int(row[1]) == (1 << 6) - 1

    def test_unpack_lane_bits_array_matches_word_form(self):
        """Each 64-lane slice equals the word-form helper on that chunk."""
        rng = random.Random(6)
        n_lanes = 150
        n_words = (n_lanes + 63) // 64
        rows_int = [
            [rng.getrandbits(n_lanes) for _ in range(5)] for _ in range(8)
        ]
        arr = np.zeros((8, 5, n_words), dtype=np.uint64)
        for i, row in enumerate(rows_int):
            for j, word in enumerate(row):
                for c0 in range(n_words):
                    arr[i, j, c0] = (word >> (64 * c0)) & 0xFFFFFFFFFFFFFFFF
        bits = unpack_lane_bits_array(arr, n_lanes)
        for c0 in range(n_words):
            lanes = min(64, n_lanes - c0 * 64)
            chunk_rows = [
                [(word >> (64 * c0)) & 0xFFFFFFFFFFFFFFFF for word in row]
                for row in rows_int
            ]
            np.testing.assert_array_equal(
                bits[:, :, c0 * 64 : c0 * 64 + lanes],
                unpack_lane_bits(chunk_rows, lanes),
            )

    def test_rejects_shape_mismatches(self):
        c = get_circuit("s27")
        arr = np.zeros((3, len(c.inputs), 2), dtype=np.uint64)
        with pytest.raises(ValueError, match="n_lanes=0"):
            simulate_packed_arrays(c, [0, 0, 0], arr, 0)
        with pytest.raises(ValueError, match="carry 2 words"):
            simulate_packed_arrays(c, [0, 0, 0], arr, 64)
        bad = np.zeros((3, len(c.inputs) + 1, 1), dtype=np.uint64)
        with pytest.raises(ValueError, match="expected"):
            simulate_packed_arrays(c, [0, 0, 0], bad, 64)


def _gen_result(circuit, faults, **overrides):
    params = dict(
        segment_length=40,
        r_limit=130,
        q_limit=2,
        rng_seed=7,
        time_limit=None,
    )
    params.update(overrides)
    cfg = BuiltinGenConfig(**params)
    gen = BuiltinGenerator(circuit, faults, None, config=cfg)
    return gen, gen.run()


def _assert_same_run(pair_a, pair_b):
    (gen_a, res_a), (gen_b, res_b) = pair_a, pair_b
    segs_a = [seg for m in res_a.sequences for seg in m.segments]
    segs_b = [seg for m in res_b.sequences for seg in m.segments]
    assert segs_a == segs_b
    assert res_a.coverage == res_b.coverage
    assert res_a.peak_swa == res_b.peak_swa
    assert res_a.detected == res_b.detected
    assert gen_a.stats.seeds_evaluated == gen_b.stats.seeds_evaluated
    assert gen_a.stats.seeds_accepted == gen_b.stats.seeds_accepted


@pytest.mark.parametrize("name", ["s298", "s953"])
class TestBuiltinGenWideLanes:
    """The Fig 4.9 loop at 128/256 lanes == 64 lanes == scalar.

    ``r_limit`` is deliberately large (130) so the per-segment trial
    budget does not cap batch widths below 64 -- otherwise the array
    engine would never engage and the test would vacuously pass.
    """

    def test_wide_lanes_match_scalar_and_64(self, name):
        c = get_circuit(name)
        faults = collapsed_transition_faults(c)
        scalar = _gen_result(c, faults, batched=False)
        word64 = _gen_result(c, faults, batch_lanes=64)
        assert word64[0].stats.array_batches == 0
        for lanes in (128, 256):
            wide = _gen_result(c, faults, lanes=lanes)
            assert wide[0].stats.array_batches > 0, "array engine never ran"
            _assert_same_run(scalar, wide)
            _assert_same_run(word64, wide)

    def test_forced_array_kernel_at_64_lanes(self, name):
        """--kernel array reroutes even 64-wide batches, identically."""
        c = get_circuit(name)
        faults = collapsed_transition_faults(c)
        word64 = _gen_result(c, faults, batch_lanes=64)
        kernel.configure("array")
        try:
            arr64 = _gen_result(c, faults, batch_lanes=64)
        finally:
            kernel.configure(None)
        assert arr64[0].stats.array_batches > 0
        _assert_same_run(word64, arr64)


class TestFsimKernelIdentity:
    def _random_tests(self, circuit, n, seed=3):
        rng = random.Random(seed)
        tests = []
        for _ in range(n):
            state = [rng.randint(0, 1) for _ in circuit.flops]
            v1 = [rng.randint(0, 1) for _ in circuit.inputs]
            v2 = [rng.randint(0, 1) for _ in circuit.inputs]
            tests.append(make_broadside_test(circuit, state, v1, v2))
        return tests

    @pytest.mark.parametrize("name", ["s298", "s953"])
    def test_detection_words_identical(self, name):
        c = get_circuit(name)
        faults = collapsed_transition_faults(c)
        tests = self._random_tests(c, 100)
        words = TransitionFaultSimulator(c).detection_words(tests, faults)
        kernel.configure("array")
        try:
            sim = TransitionFaultSimulator(c)
            assert sim._kernel == "array"
            words_arr = sim.detection_words(tests, faults)
        finally:
            kernel.configure(None)
        assert words == words_arr

    def test_chunk_boundary_identical(self):
        """Sets spanning multiple PPSFP chunks stay identical per chunk."""
        c = get_circuit("s298")
        faults = collapsed_transition_faults(c)
        tests = self._random_tests(c, 40, seed=9)
        words = TransitionFaultSimulator(c, chunk_size=16).detection_words(
            tests, faults
        )
        kernel.configure("array")
        try:
            words_arr = TransitionFaultSimulator(
                c, chunk_size=16
            ).detection_words(tests, faults)
        finally:
            kernel.configure(None)
        assert words == words_arr


class TestCliKernelFlags:
    """Bad --kernel / --lanes values fail fast with exit code 2."""

    def test_unknown_kernel(self, capsys):
        assert main(["generate", "s27", "--kernel", "simd"]) == 2
        assert "unknown kernel 'simd'" in capsys.readouterr().err

    def test_lanes_not_multiple_of_64(self, capsys):
        assert main(["generate", "s27", "--lanes", "100"]) == 2
        assert "multiple of 64" in capsys.readouterr().err

    def test_lanes_non_positive(self, capsys):
        assert main(["generate", "s27", "--lanes", "0"]) == 2
        assert "positive multiple of 64" in capsys.readouterr().err

    def test_word_kernel_with_wide_lanes_conflicts(self, capsys):
        assert main(
            ["generate", "s27", "--kernel", "word", "--lanes", "128"]
        ) == 2
        assert "exceeds the word kernel" in capsys.readouterr().err

    def test_table_validates_too(self, capsys):
        assert main(["table", "4.2", "--kernel", "simd"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_generate_with_array_kernel_runs(self, capsys):
        code = main(
            [
                "generate", "s27",
                "--length", "20", "--time-limit", "1",
                "--kernel", "array", "--lanes", "128",
            ]
        )
        assert code == 0
        assert "FC" in capsys.readouterr().out
