"""Tests for the LFSR / MISR hardware models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist.lfsr import (
    Lfsr,
    LfsrLanes,
    Misr,
    PRIMITIVE_TAPS,
    primitive_taps,
    signature_of,
)


class TestLfsr:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 9, 10])
    def test_maximal_period(self, n):
        """A primitive polynomial cycles through all 2**n - 1 non-zero states."""
        lfsr = Lfsr(n=n, seed=1)
        assert lfsr.period() == (1 << n) - 1

    def test_never_all_zero(self):
        lfsr = Lfsr(n=8, seed=5)
        for _ in range(600):
            lfsr.step()
            assert lfsr.state != 0

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(n=4, seed=0)
        with pytest.raises(ValueError):
            Lfsr(n=4, seed=16)

    def test_reseed(self):
        lfsr = Lfsr(n=8, seed=3)
        lfsr.run(10)
        lfsr.reseed(3)
        first = lfsr.run(10)
        lfsr.reseed(3)
        assert lfsr.run(10) == first

    def test_bits_match_state(self):
        lfsr = Lfsr(n=4, seed=0b1010)
        assert lfsr.bits == [0, 1, 0, 1]

    def test_untabulated_size(self):
        with pytest.raises(ValueError):
            primitive_taps(1000)

    def test_bit_balance(self):
        """Each stage is 0/1 with probability ~1/2 over the period."""
        n = 10
        lfsr = Lfsr(n=n, seed=1)
        ones = 0
        period = (1 << n) - 1
        for _ in range(period):
            ones += lfsr.state & 1
            lfsr.step()
        assert ones == (1 << (n - 1))  # exactly 2^(n-1) ones per stage

    def test_32_stage_tabulated(self):
        assert 32 in PRIMITIVE_TAPS
        Lfsr(n=32, seed=0xDEADBEEF).run(100)

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_step_matches_per_tap_parity(self, n):
        """The tap-mask popcount feedback equals the per-tap XOR loop."""
        taps = primitive_taps(n)
        lfsr = Lfsr(n=n, seed=3)
        for _ in range(200):
            state = lfsr.state
            expect = 0
            for t in taps:
                expect ^= (state >> (t - 1)) & 1
            assert lfsr.step() == expect


class TestLfsrLanes:
    def test_lanes_match_scalar(self):
        """Every lane traverses its scalar Lfsr's exact state sequence."""
        n = 8
        seeds = [1, 2, 3, 0x55, 0xFF]
        lanes = LfsrLanes(n, seeds)
        scalars = [Lfsr(n=n, seed=s) for s in seeds]
        for _ in range(100):
            packed = lanes.step()
            for t, lfsr in enumerate(scalars):
                assert (packed >> t) & 1 == lfsr.step()
                assert lanes.states[t] == lfsr.state

    def test_full_64_lanes(self):
        seeds = list(range(1, 65))
        lanes = LfsrLanes(10, seeds)
        lanes.run(20)
        scalars = [Lfsr(n=10, seed=s) for s in seeds]
        for lfsr in scalars:
            lfsr.run(20)
        assert lanes.states == [lfsr.state for lfsr in scalars]

    def test_lane_limits(self):
        with pytest.raises(ValueError):
            LfsrLanes(4, [])
        with pytest.raises(ValueError):
            LfsrLanes(4, [1] * 65)
        with pytest.raises(ValueError):
            LfsrLanes(4, [0])


class TestSequenceBatch:
    def test_developed_tpg_batch_matches_sequence(self):
        from repro.bist.tpg import DevelopedTpg
        from repro.circuits.benchmarks import get_circuit

        tpg = DevelopedTpg.for_circuit(get_circuit("s298"))
        seeds = [1, 19, 0xABC, (1 << tpg.n_lfsr) - 1]
        length = 30
        rows = tpg.sequence_batch(seeds, length)
        for t, seed in enumerate(seeds):
            expect = tpg.sequence(seed, length)
            got = [[(w >> t) & 1 for w in row] for row in rows]
            assert got == expect

    def test_reference_tpg_batch_matches_sequence(self):
        from repro.bist.tpg import ReferenceTpg
        from repro.circuits.benchmarks import get_circuit

        tpg = ReferenceTpg.for_circuit(get_circuit("s27"))
        seeds = [1, 7, 500]
        length = 25
        rows = tpg.sequence_batch(seeds, length)
        for t, seed in enumerate(seeds):
            expect = tpg.sequence(seed, length)
            got = [[(w >> t) & 1 for w in row] for row in rows]
            assert got == expect


class TestMisr:
    def test_deterministic(self):
        responses = [[1, 0, 1], [0, 1, 1], [1, 1, 1]]
        assert signature_of(responses, 8) == signature_of(responses, 8)

    def test_order_sensitive(self):
        a = [[1, 0], [0, 1]]
        b = [[0, 1], [1, 0]]
        assert signature_of(a, 8) != signature_of(b, 8)

    def test_single_bit_error_detected(self):
        good = [[1, 0, 1, 1], [0, 1, 1, 0], [1, 1, 0, 0]]
        bad = [row[:] for row in good]
        bad[1][2] ^= 1
        assert signature_of(good, 16) != signature_of(bad, 16)

    def test_reset(self):
        misr = Misr(n=8)
        misr.absorb([1, 1])
        misr.reset()
        assert misr.state == 0

    def test_wide_response_folded(self):
        misr = Misr(n=4)
        misr.absorb([0] * 4 + [1])  # bit 4 folds onto bit 0
        misr2 = Misr(n=4)
        misr2.absorb([1])
        assert misr.state == misr2.state

    @settings(max_examples=30)
    @given(
        st.lists(st.lists(st.integers(0, 1), min_size=4, max_size=4), min_size=1, max_size=10)
    )
    def test_linearity(self, stream):
        """MISRs are linear over GF(2): sig(a xor b) = sig(a) xor sig(b)."""
        zeros = [[0, 0, 0, 0] for _ in stream]
        sig_zero = signature_of(zeros, 8)
        sig = signature_of(stream, 8)
        doubled = [[b ^ b2 for b, b2 in zip(row, row)] for row in stream]
        assert signature_of(doubled, 8) == sig_zero
        # sig(a) xor sig(a) == sig(0): check via int xor
        assert sig ^ sig == 0

    def test_int_absorb_matches_list(self):
        a = Misr(n=8)
        b = Misr(n=8)
        a.absorb([1, 0, 1])
        b.absorb(0b101)
        assert a.state == b.state
