"""Tests for the LFSR / MISR hardware models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist.lfsr import Lfsr, Misr, PRIMITIVE_TAPS, primitive_taps, signature_of


class TestLfsr:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 9, 10])
    def test_maximal_period(self, n):
        """A primitive polynomial cycles through all 2**n - 1 non-zero states."""
        lfsr = Lfsr(n=n, seed=1)
        assert lfsr.period() == (1 << n) - 1

    def test_never_all_zero(self):
        lfsr = Lfsr(n=8, seed=5)
        for _ in range(600):
            lfsr.step()
            assert lfsr.state != 0

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(n=4, seed=0)
        with pytest.raises(ValueError):
            Lfsr(n=4, seed=16)

    def test_reseed(self):
        lfsr = Lfsr(n=8, seed=3)
        lfsr.run(10)
        lfsr.reseed(3)
        first = lfsr.run(10)
        lfsr.reseed(3)
        assert lfsr.run(10) == first

    def test_bits_match_state(self):
        lfsr = Lfsr(n=4, seed=0b1010)
        assert lfsr.bits == [0, 1, 0, 1]

    def test_untabulated_size(self):
        with pytest.raises(ValueError):
            primitive_taps(1000)

    def test_bit_balance(self):
        """Each stage is 0/1 with probability ~1/2 over the period."""
        n = 10
        lfsr = Lfsr(n=n, seed=1)
        ones = 0
        period = (1 << n) - 1
        for _ in range(period):
            ones += lfsr.state & 1
            lfsr.step()
        assert ones == (1 << (n - 1))  # exactly 2^(n-1) ones per stage

    def test_32_stage_tabulated(self):
        assert 32 in PRIMITIVE_TAPS
        Lfsr(n=32, seed=0xDEADBEEF).run(100)


class TestMisr:
    def test_deterministic(self):
        responses = [[1, 0, 1], [0, 1, 1], [1, 1, 1]]
        assert signature_of(responses, 8) == signature_of(responses, 8)

    def test_order_sensitive(self):
        a = [[1, 0], [0, 1]]
        b = [[0, 1], [1, 0]]
        assert signature_of(a, 8) != signature_of(b, 8)

    def test_single_bit_error_detected(self):
        good = [[1, 0, 1, 1], [0, 1, 1, 0], [1, 1, 0, 0]]
        bad = [row[:] for row in good]
        bad[1][2] ^= 1
        assert signature_of(good, 16) != signature_of(bad, 16)

    def test_reset(self):
        misr = Misr(n=8)
        misr.absorb([1, 1])
        misr.reset()
        assert misr.state == 0

    def test_wide_response_folded(self):
        misr = Misr(n=4)
        misr.absorb([0] * 4 + [1])  # bit 4 folds onto bit 0
        misr2 = Misr(n=4)
        misr2.absorb([1])
        assert misr.state == misr2.state

    @settings(max_examples=30)
    @given(
        st.lists(st.lists(st.integers(0, 1), min_size=4, max_size=4), min_size=1, max_size=10)
    )
    def test_linearity(self, stream):
        """MISRs are linear over GF(2): sig(a xor b) = sig(a) xor sig(b)."""
        zeros = [[0, 0, 0, 0] for _ in stream]
        sig_zero = signature_of(zeros, 8)
        sig = signature_of(stream, 8)
        doubled = [[b ^ b2 for b, b2 in zip(row, row)] for row in stream]
        assert signature_of(doubled, 8) == sig_zero
        # sig(a) xor sig(a) == sig(0): check via int xor
        assert sig ^ sig == 0

    def test_int_absorb_matches_list(self):
        a = Misr(n=8)
        b = Misr(n=8)
        a.absorb([1, 0, 1])
        b.absorb(0b101)
        assert a.state == b.state
