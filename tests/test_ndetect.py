"""Tests for n-detection metrics."""

import pytest

from repro.circuits.benchmarks import get_circuit
from repro.faults.lists import all_transition_faults
from repro.faults.ndetect import NDetectProfile, n_detect_profile
from repro.logic.simulator import make_broadside_test


class TestProfile:
    def test_counts_accumulate(self):
        c = get_circuit("s27")
        faults = all_transition_faults(c)
        t = make_broadside_test(c, [0, 0, 0], [0, 0, 0, 0], [1, 1, 1, 1])
        once = n_detect_profile(c, [t], faults)
        thrice = n_detect_profile(c, [t, t, t], faults)
        for fault in faults:
            assert thrice.counts[fault] == 3 * once.counts[fault]

    def test_coverage_monotone_in_n(self):
        import random

        c = get_circuit("s27")
        faults = all_transition_faults(c)
        rng = random.Random(0)
        tests = [
            make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            for _ in range(40)
        ]
        profile = n_detect_profile(c, tests, faults)
        assert profile.coverage(1) >= profile.coverage(2) >= profile.coverage(5)

    def test_histogram(self):
        profile = NDetectProfile(counts={"a": 3, "b": 1, "c": 0})
        assert profile.histogram((1, 2, 3)) == {1: 2, 2: 1, 3: 1}
        assert profile.max_n == 3
        assert profile.coverage(1) == pytest.approx(200.0 / 3.0)

    def test_empty(self):
        profile = NDetectProfile(counts={})
        assert profile.coverage() == 0.0
        assert profile.max_n == 0
