"""Unit tests for the netlist data model."""

import pytest

from repro.circuits.netlist import Circuit, Gate, NetlistError
from repro.circuits.gates import GateType


def tiny():
    c = Circuit(name="tiny")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("n1", "AND", ["a", "b"])
    c.add_gate("n2", "NOT", ["n1"])
    c.add_dff(q="q0", d="n2")
    c.add_gate("n3", "OR", ["q0", "a"])
    c.add_output("n3")
    c.validate()
    return c


class TestConstruction:
    def test_stats(self):
        c = tiny()
        s = c.stats()
        assert s == {
            "inputs": 2,
            "outputs": 1,
            "flops": 1,
            "gates": 3,
            "lines": 6,
            "depth": 2,
        }

    def test_duplicate_input_rejected(self):
        c = Circuit(name="x")
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_input("a")

    def test_duplicate_gate_rejected(self):
        c = Circuit(name="x")
        c.add_input("a")
        c.add_gate("n", "BUF", ["a"])
        with pytest.raises(NetlistError):
            c.add_gate("n", "NOT", ["a"])

    def test_duplicate_flop_rejected(self):
        c = Circuit(name="x")
        c.add_input("a")
        c.add_dff(q="q", d="a")
        with pytest.raises(NetlistError):
            c.add_dff(q="q", d="a")

    def test_gate_without_inputs_rejected(self):
        with pytest.raises(NetlistError):
            Gate(name="n", gate_type=GateType.AND, inputs=())

    def test_unary_gate_arity_enforced(self):
        with pytest.raises(NetlistError):
            Gate(name="n", gate_type=GateType.NOT, inputs=("a", "b"))

    def test_sequential_gate_type_rejected(self):
        with pytest.raises(NetlistError):
            Gate(name="n", gate_type=GateType.DFF, inputs=("a",))


class TestValidation:
    def test_undriven_gate_input(self):
        c = Circuit(name="x")
        c.add_input("a")
        c.add_gate("n", "AND", ["a", "ghost"])
        with pytest.raises(NetlistError):
            c.validate()

    def test_undriven_output(self):
        c = Circuit(name="x")
        c.add_input("a")
        c.add_output("ghost")
        with pytest.raises(NetlistError):
            c.validate()

    def test_undriven_flop_input(self):
        c = Circuit(name="x")
        c.add_input("a")
        c.add_dff(q="q", d="ghost")
        with pytest.raises(NetlistError):
            c.validate()

    def test_combinational_cycle_detected(self):
        c = Circuit(name="x")
        c.add_input("a")
        c.add_gate("n1", "AND", ["a", "n2"])
        c.add_gate("n2", "NOT", ["n1"])
        with pytest.raises(NetlistError):
            c.validate()

    def test_sequential_loop_is_fine(self):
        c = Circuit(name="x")
        c.add_input("a")
        c.add_gate("n1", "AND", ["a", "q"])
        c.add_dff(q="q", d="n1")
        c.add_output("n1")
        c.validate()


class TestStructure:
    def test_topo_order_respects_dependencies(self):
        c = tiny()
        seen = set(c.comb_input_lines)
        for gate in c.topo_gates:
            assert all(i in seen for i in gate.inputs)
            seen.add(gate.name)

    def test_levels(self):
        c = tiny()
        assert c.levels["a"] == 0
        assert c.levels["q0"] == 0
        assert c.levels["n1"] == 1
        assert c.levels["n2"] == 2
        assert c.levels["n3"] == 1

    def test_fanout(self):
        c = tiny()
        assert set(c.fanout["a"]) == {"n1", "n3"}
        assert c.fanout["n2"] == []

    def test_transitive_fanout(self):
        c = tiny()
        assert c.transitive_fanout("a") == {"n1", "n2", "n3"}
        assert c.transitive_fanout("n2") == set()

    def test_transitive_fanin(self):
        c = tiny()
        assert c.transitive_fanin("n2") == {"n2", "n1", "a", "b"}

    def test_state_and_next_state_lines(self):
        c = tiny()
        assert c.state_lines == ["q0"]
        assert c.next_state_lines == ["n2"]
        assert c.observation_lines == ["n3", "n2"]

    def test_driver_kind(self):
        c = tiny()
        assert c.driver_kind("a") == "input"
        assert c.driver_kind("q0") == "state"
        assert c.driver_kind("n1") == "gate"
        with pytest.raises(NetlistError):
            c.driver_kind("ghost")

    def test_copy_is_independent(self):
        c = tiny()
        c2 = c.copy(name="tiny2")
        c2.add_input("extra")
        assert "extra" not in c.inputs
        assert c2.name == "tiny2"

    def test_cache_invalidated_on_edit(self):
        c = tiny()
        depth_before = c.depth
        c.add_gate("n4", "NOT", ["n2"])
        c.add_output("n4")
        assert c.depth == depth_before + 1
