"""Tests for the repro.obs observability subsystem.

Covers the metrics registry (counters/gauges/histograms, disabled no-op
path), span tracing (nesting, trace JSONL round-trip), the run-report
formatter, and cross-process metric merging through the experiment
runner.
"""

import json

import pytest

from repro import obs
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.report import render_report
from repro.obs.trace import Span, read_trace, render_trace, write_trace
from repro.experiments.runner import ExperimentTask, run_tasks


@pytest.fixture(autouse=True)
def clean_singleton():
    """Keep the module singleton disabled and empty around every test."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestHistogram:
    def test_observe_and_stats(self):
        h = Histogram()
        for v in (4.0, 1.0, 7.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.min == 1.0
        assert h.max == 7.0
        assert h.mean == 4.0

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_dict_round_trip(self):
        h = Histogram()
        h.observe(2.5)
        h.observe(-1.0)
        back = Histogram.from_dict(h.to_dict())
        assert back.count == 2
        assert back.total == 1.5
        assert back.min == -1.0
        assert back.max == 2.5

    def test_merge_is_exact(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 9.0):
            a.observe(v)
        b.observe(5.0)
        a.merge(b)
        assert (a.count, a.total, a.min, a.max) == (3, 15.0, 1.0, 9.0)

    def test_merge_empty_is_noop(self):
        a = Histogram()
        a.observe(3.0)
        a.merge(Histogram())
        assert (a.count, a.min, a.max) == (1, 3.0, 3.0)

    def test_quantiles_exact_below_reservoir_cap(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100, well under RESERVOIR_CAP
            h.observe(float(v))
        assert h.quantile(0.50) == 50.0
        assert h.quantile(0.95) == 95.0
        assert h.quantile(0.99) == 99.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_quantiles_empty_histogram_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_quantiles_approximate_past_reservoir_cap(self):
        from repro.obs.registry import RESERVOIR_CAP

        h = Histogram()
        n = RESERVOIR_CAP * 4
        for v in range(n):  # uniform 0..n-1, sampling stays representative
            h.observe(float(v))
        assert len(h.samples) <= RESERVOIR_CAP
        assert h.quantile(0.5) == pytest.approx(n / 2, rel=0.15)
        assert h.quantile(0.95) == pytest.approx(n * 0.95, rel=0.15)

    def test_quantiles_survive_dict_round_trip_and_merge(self):
        a, b = Histogram(), Histogram()
        for v in range(100):
            a.observe(float(v))
        for v in range(100, 200):
            b.observe(float(v))
        back = Histogram.from_dict(a.to_dict())
        assert back.quantile(0.5) == a.quantile(0.5)
        a.merge(b)
        assert a.quantile(0.5) == pytest.approx(100.0, rel=0.15)

    def test_from_dict_without_samples_is_backward_compatible(self):
        legacy = {"count": 3, "total": 12.0, "min": 1.0, "max": 7.0}
        h = Histogram.from_dict(legacy)
        assert (h.count, h.mean) == (3, 4.0)
        assert h.quantile(0.5) == 0.0  # no samples to estimate from


class TestRegistry:
    def test_disabled_mutators_are_noops(self):
        r = MetricsRegistry(enabled=False)
        r.count("x")
        r.gauge("g", 1.0)
        r.observe("h", 2.0)
        assert not r.counters and not r.gauges and not r.histograms

    def test_enabled_mutators_record(self):
        r = MetricsRegistry(enabled=True)
        r.count("x")
        r.count("x", 4)
        r.gauge("g", 1.0)
        r.gauge("g", 9.0)
        r.observe("h", 2.0)
        assert r.counters["x"] == 5
        assert r.gauges["g"] == 9.0
        assert r.histograms["h"].count == 1

    def test_reset_clears_but_keeps_flag(self):
        r = MetricsRegistry(enabled=True)
        r.count("x")
        r.reset()
        assert r.enabled and not r.counters

    def test_snapshot_is_json_serializable(self):
        r = MetricsRegistry(enabled=True)
        r.count("a", 2)
        r.observe("h", 1.5)
        with Span(r, "s", {"k": "v"}):
            pass
        assert json.loads(json.dumps(r.snapshot()))["counters"]["a"] == 2

    def test_merge_counters_add_gauges_max(self):
        r = MetricsRegistry(enabled=True)
        r.count("c", 3)
        r.gauge("g", 5.0)
        r.merge({"counters": {"c": 2}, "gauges": {"g": 4.0}})
        r.merge({"counters": {"c": 1}, "gauges": {"g": 8.0}})
        assert r.counters["c"] == 6
        assert r.gauges["g"] == 8.0

    def test_merge_histograms_and_tagged_events(self):
        r = MetricsRegistry(enabled=True)
        worker = MetricsRegistry(enabled=True)
        worker.observe("h", 2.0)
        with Span(worker, "w", {}):
            pass
        r.merge(worker.snapshot(), task="t1")
        assert r.histograms["h"].count == 1
        assert r.events[0]["attrs"]["task"] == "t1"

    def test_merge_order_independent(self):
        snaps = [
            {"counters": {"c": i}, "gauges": {"g": float(i)}} for i in (1, 2, 3)
        ]
        a, b = MetricsRegistry(enabled=True), MetricsRegistry(enabled=True)
        for s in snaps:
            a.merge(s)
        for s in reversed(snaps):
            b.merge(s)
        assert a.counters == b.counters
        assert a.gauges == b.gauges


class TestSpans:
    def test_span_records_event_and_histogram(self):
        r = MetricsRegistry(enabled=True)
        with Span(r, "outer", {"circuit": "s27"}):
            pass
        (event,) = r.events
        assert event["name"] == "outer"
        assert event["depth"] == 0
        assert event["parent"] is None
        assert event["attrs"] == {"circuit": "s27"}
        assert r.histograms["span.outer"].count == 1

    def test_nesting_depth_and_parent(self):
        r = MetricsRegistry(enabled=True)
        with Span(r, "outer", {}):
            with Span(r, "inner", {}):
                pass
        inner, outer = r.events
        assert (inner["depth"], inner["parent"]) == (1, "outer")
        assert (outer["depth"], outer["parent"]) == (0, None)

    def test_module_span_is_null_when_disabled(self):
        s = obs.span("anything")
        with s:
            pass
        assert s.elapsed == 0.0
        assert not obs.registry().events

    def test_timed_measures_even_when_disabled(self):
        with obs.timed("t") as t:
            sum(range(1000))
        assert t.elapsed > 0.0
        assert not obs.registry().events  # but records nothing

    def test_stopwatch_expiry(self):
        w = obs.stopwatch()
        assert not w.expired(None)
        assert not w.expired(60.0)
        assert w.expired(-1.0)
        w.restart()
        assert w.elapsed < 60.0


class TestTraceFile:
    def test_jsonl_round_trip(self, tmp_path):
        r = MetricsRegistry(enabled=True)
        with Span(r, "a", {"n": 1}):
            with Span(r, "b", {}):
                pass
        path = tmp_path / "trace.jsonl"
        n = write_trace(str(path), r)
        assert n == 2
        meta, events = read_trace(str(path))
        assert meta["schema"] == "repro-trace-v1"
        assert meta["n_spans"] == 2
        assert [e["name"] for e in events] == ["b", "a"]  # completion order
        assert events[1]["attrs"] == {"n": 1}

    def test_read_tolerates_missing_meta(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text('{"type": "span", "name": "x", "dur": 0.5}\n')
        meta, events = read_trace(str(path))
        assert meta == {}
        assert events[0]["name"] == "x"

    def test_render_trace_tree_and_summary(self):
        r = MetricsRegistry(enabled=True)
        with Span(r, "outer", {"k": "v"}):
            with Span(r, "inner", {}):
                pass
        text = render_trace(r.events)
        assert "outer" in text and "  inner" in text
        assert "[k=v]" in text
        assert "span" in text and "count" in text  # summary table header

    def test_render_trace_limit(self):
        r = MetricsRegistry(enabled=True)
        for i in range(5):
            with Span(r, f"s{i}", {}):
                pass
        text = render_trace(r.events, limit=2)
        assert "3 more spans" in text


class TestRenderReport:
    def test_empty_registry(self):
        text = render_report(MetricsRegistry())
        assert "no metrics recorded" in text

    def test_sections_and_other(self):
        r = MetricsRegistry(enabled=True)
        r.count("gen.seeds_accepted", 7)
        r.count("fsim.ppsfp_passes", 3)
        r.count("mystery.metric", 1)
        r.gauge("gen.coverage_percent", 92.5)
        r.observe("gen.seeds_tried_per_segment", 4)
        text = render_report(r, title="report")
        assert text.splitlines()[0] == "report"
        assert "generation (Fig 4.9 construction)" in text
        assert "seeds_accepted" in text
        assert "fault grading (PPSFP)" in text
        assert "other" in text and "mystery.metric" in text
        assert "92.5" in text

    def test_phase_breakdown_from_spans(self):
        r = MetricsRegistry(enabled=True)
        with Span(r, "gen.run", {}):
            pass
        text = render_report(r)
        assert "per-phase time breakdown" in text
        assert "gen.run" in text
        assert "1 trace span(s) recorded" in text

    def test_accepts_snapshot_dict(self):
        r = MetricsRegistry(enabled=True)
        r.count("gen.tests_applied", 10)
        assert "tests_applied" in render_report(r.snapshot())


def _worker_task(n: int) -> int:
    """Pool-side task: records metrics into the worker's registry."""
    obs.count("test.worker_calls")
    obs.observe("test.n_values", n)
    with obs.span("test.work", n=n):
        pass
    return n * n


class TestRunnerIntegration:
    def _tasks(self, count=3):
        return [
            ExperimentTask(key=f"t{i}", fn=_worker_task, kwargs={"n": i})
            for i in range(count)
        ]

    def test_inline_results_and_metrics(self):
        obs.enable()
        assert run_tasks(self._tasks(), jobs=1) == [0, 1, 4]
        snap = obs.snapshot()
        assert snap["counters"]["test.worker_calls"] == 3
        assert snap["counters"]["runner.tasks_completed"] == 3

    def test_pool_results_match_inline(self):
        inline = run_tasks(self._tasks(), jobs=1)
        pooled = run_tasks(self._tasks(), jobs=2)
        assert inline == pooled == [0, 1, 4]

    def test_pool_merges_worker_registries(self):
        obs.enable()
        run_tasks(self._tasks(), jobs=2)
        snap = obs.snapshot()
        assert snap["counters"]["test.worker_calls"] == 3
        assert snap["counters"]["runner.worker_registries_merged"] == 3
        assert snap["histograms"]["test.n_values"]["count"] == 3
        # Worker span events come back tagged with their task key.
        tags = {
            e["attrs"].get("task")
            for e in obs.registry().events
            if e["name"] == "test.work"
        }
        assert tags == {"t0", "t1", "t2"}

    def test_pool_without_obs_returns_plain_results(self):
        assert run_tasks(self._tasks(), jobs=2) == [0, 1, 4]
        assert not obs.registry().counters

    def test_progress_callback_order(self):
        seen = []
        run_tasks(self._tasks(), jobs=2, progress=lambda i, t: seen.append((i, t.key)))
        assert seen == [(0, "t0"), (1, "t1"), (2, "t2")]

    def test_progress_callback_inline(self):
        seen = []
        run_tasks(self._tasks(2), jobs=1, progress=lambda i, t: seen.append(t.key))
        assert seen == ["t0", "t1"]
