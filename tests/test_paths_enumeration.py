"""Tests for structural path enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.benchmarks import get_circuit
from repro.paths.enumeration import (
    count_paths,
    enumerate_paths,
    iter_paths,
    k_longest_paths,
    path_delay,
    unit_delay,
)


class TestEnumerate:
    def test_s27_known_count(self):
        c = get_circuit("s27")
        paths = enumerate_paths(c)
        assert len(paths) == 28  # the paper's 56 TPDFs / 2 directions

    def test_count_matches_enumeration(self):
        c = get_circuit("s27")
        assert count_paths(c) == len(enumerate_paths(c))

    def test_count_matches_enumeration_s298(self):
        c = get_circuit("s298")
        assert count_paths(c) == len(enumerate_paths(c, limit=10**6))

    def test_limit_enforced(self):
        c = get_circuit("s298")
        with pytest.raises(ValueError):
            enumerate_paths(c, limit=10)

    def test_paths_are_valid(self):
        c = get_circuit("s27")
        for path in enumerate_paths(c):
            path.validate(c)
            assert path.source in c.comb_input_lines
            assert path.sink in set(c.observation_lines)

    def test_paths_unique(self):
        c = get_circuit("s27")
        paths = enumerate_paths(c)
        assert len({p.lines for p in paths}) == len(paths)

    def test_iter_is_lazy(self):
        c = get_circuit("s298")
        gen = iter_paths(c)
        first = next(gen)
        first.validate(c)


class TestKLongest:
    def test_nonincreasing_order(self):
        c = get_circuit("s298")
        paths = k_longest_paths(c, 25)
        lengths = [path_delay(p) for p in paths]
        assert lengths == sorted(lengths, reverse=True)

    def test_matches_exhaustive_top(self):
        """The K longest really are the K longest (vs full enumeration)."""
        c = get_circuit("s27")
        every = sorted(enumerate_paths(c), key=lambda p: -path_delay(p))
        top = k_longest_paths(c, 5)
        assert [path_delay(p) for p in top] == [path_delay(p) for p in every[:5]]

    def test_k_larger_than_path_count(self):
        c = get_circuit("s27")
        assert len(k_longest_paths(c, 10_000)) == 28

    def test_custom_delay_fn(self):
        c = get_circuit("s27")
        # Weight only NOR gates: ordering changes accordingly.
        def weight(line):
            gate = c.gates.get(line)
            from repro.circuits.gates import GateType

            return 5.0 if gate and gate.gate_type == GateType.NOR else 1.0

        paths = k_longest_paths(c, 5, delay_fn=weight)
        weights = [path_delay(p, weight) for p in paths]
        assert weights == sorted(weights, reverse=True)

    @settings(max_examples=10, deadline=None)
    @given(k=st.integers(1, 30))
    def test_prefix_property(self, k):
        """k_longest(k) is a delay-prefix of k_longest(k+5)."""
        c = get_circuit("s298")
        small = [path_delay(p) for p in k_longest_paths(c, k)]
        large = [path_delay(p) for p in k_longest_paths(c, k + 5)]
        assert small == large[: len(small)]

    def test_unit_delay(self):
        assert unit_delay("anything") == 1.0
        from repro.faults.models import Path

        assert path_delay(Path(lines=("a", "b", "c"))) == 2.0
