"""Tests for path-delay-fault sensitization classification and TPDF grading."""

import pytest

from repro.experiments.figures import fig_1_4_circuit
from repro.faults.models import (
    FALL,
    Path,
    PathDelayFault,
    RISE,
    TransitionPathDelayFault,
)
from repro.faults.pdfsim import (
    ROBUST,
    STRONG,
    WEAK,
    at_least,
    classify_sensitization,
    tpdf_detected_by,
    tpdf_detection_words,
)
from repro.logic.simulator import simulate_comb


def frames(circuit, v1, v2):
    return (
        simulate_comb(circuit, v1),
        simulate_comb(circuit, v2),
    )


PATH_ACEG = PathDelayFault(Path(lines=("a", "c", "e", "g")), RISE)


class TestFigureExamples:
    def test_fig_1_4_robust(self):
        """The paper's robust test <0010, 1010> on abdf."""
        c = fig_1_4_circuit()
        f1, f2 = frames(
            c, {"a": 0, "b": 0, "d": 1, "f": 0}, {"a": 1, "b": 0, "d": 1, "f": 0}
        )
        assert classify_sensitization(c, PATH_ACEG, f1, f2) == ROBUST

    def test_fig_1_5_nonrobust(self):
        """The paper's non-robust test <0011, 1010>: f falls (1 -> 0)."""
        c = fig_1_4_circuit()
        f1, f2 = frames(
            c, {"a": 0, "b": 0, "d": 1, "f": 1}, {"a": 1, "b": 0, "d": 1, "f": 0}
        )
        cls = classify_sensitization(c, PATH_ACEG, f1, f2)
        assert cls in (STRONG, WEAK)
        assert cls != ROBUST

    def test_wrong_launch_is_no_test(self):
        c = fig_1_4_circuit()
        f1, f2 = frames(
            c, {"a": 1, "b": 0, "d": 1, "f": 0}, {"a": 1, "b": 0, "d": 1, "f": 0}
        )
        assert classify_sensitization(c, PATH_ACEG, f1, f2) is None

    def test_controlling_side_input_blocks(self):
        c = fig_1_4_circuit()
        # d = 0 blocks the AND gate on the path.
        f1, f2 = frames(
            c, {"a": 0, "b": 0, "d": 0, "f": 0}, {"a": 1, "b": 0, "d": 0, "f": 0}
        )
        assert classify_sensitization(c, PATH_ACEG, f1, f2) is None

    def test_falling_direction(self):
        c = fig_1_4_circuit()
        fault = PathDelayFault(Path(lines=("a", "c", "e", "g")), FALL)
        f1, f2 = frames(
            c, {"a": 1, "b": 0, "d": 1, "f": 0}, {"a": 0, "b": 0, "d": 1, "f": 0}
        )
        assert classify_sensitization(c, fault, f1, f2) == ROBUST


class TestHierarchy:
    def test_rank_order(self):
        assert at_least(ROBUST, WEAK)
        assert at_least(ROBUST, STRONG)
        assert at_least(STRONG, WEAK)
        assert not at_least(WEAK, STRONG)
        assert not at_least(None, WEAK)

    def test_xor_side_steady_required_for_robust(self):
        from repro.circuits.netlist import Circuit

        c = Circuit(name="xorside")
        c.add_input("a")
        c.add_input("s")
        c.add_gate("o", "XOR", ["a", "s"])
        c.add_output("o")
        c.validate()
        fault = PathDelayFault(Path(lines=("a", "o")), RISE)
        steady = frames(c, {"a": 0, "s": 0}, {"a": 1, "s": 0})
        assert classify_sensitization(c, fault, *steady) == ROBUST
        toggling = frames(c, {"a": 0, "s": 1}, {"a": 1, "s": 0})
        # With s toggling, the on-path polarity flips and the side input
        # is unstable: not robust.
        cls = classify_sensitization(c, fault, *toggling)
        assert cls != ROBUST


class TestTpdfGrading:
    def test_detection_is_and_of_constituents(self):
        from repro.circuits.benchmarks import get_circuit
        from repro.faults.fsim import TransitionFaultSimulator
        from repro.logic.simulator import make_broadside_test
        import random

        c = get_circuit("s27")
        rng = random.Random(8)
        tests = [
            make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            for _ in range(64)
        ]
        from repro.paths.enumeration import enumerate_paths

        faults = [
            TransitionPathDelayFault(path=p, direction=d)
            for p in enumerate_paths(c)[:10]
            for d in (RISE, FALL)
        ]
        words = tpdf_detection_words(c, faults, tests)
        sim = TransitionFaultSimulator(c)
        for fault in faults:
            constituents = fault.transition_faults(c)
            tr_words = sim.detection_words(tests, constituents)
            expect = (1 << len(tests)) - 1
            for tr in constituents:
                expect &= tr_words[tr]
            assert words[fault] == expect

    def test_single_test_wrapper(self):
        from repro.experiments.figures import fig_1_4_circuit
        from repro.logic.simulator import make_broadside_test

        c = fig_1_4_circuit()
        fault = TransitionPathDelayFault(Path(lines=("a", "c", "e", "g")), RISE)
        t = make_broadside_test(c, [], [0, 0, 1, 0], [1, 0, 1, 0])
        assert tpdf_detected_by(c, fault, t)
        # d = 0 in the second pattern blocks the on-path AND gate.
        t_bad = make_broadside_test(c, [], [0, 0, 1, 0], [1, 0, 0, 0])
        assert not tpdf_detected_by(c, fault, t_bad)

    def test_tpdf_detection_implies_on_path_transitions(self):
        """A test detecting a TPDF launches the polarity-correct transition
        on *every* on-path line -- the transition component of a strong
        non-robust test (Section 2.2).  (The off-path non-controlling
        condition is not strictly implied: a controlling on-path value can
        coexist with a controlling side input.)
        """
        from repro.circuits.benchmarks import get_circuit
        from repro.logic.simulator import make_broadside_test, simulate_broadside
        from repro.paths.enumeration import enumerate_paths
        import random

        c = get_circuit("s27")
        rng = random.Random(2)
        tests = [
            make_broadside_test(
                c,
                [rng.randint(0, 1) for _ in c.flops],
                [rng.randint(0, 1) for _ in c.inputs],
                [rng.randint(0, 1) for _ in c.inputs],
            )
            for _ in range(128)
        ]
        faults = [
            TransitionPathDelayFault(path=p, direction=d)
            for p in enumerate_paths(c)
            for d in (RISE, FALL)
        ]
        words = tpdf_detection_words(c, faults, tests)
        checked = 0
        for fault, word in words.items():
            if not word:
                continue
            index = (word & -word).bit_length() - 1
            frame1, frame2 = simulate_broadside(c, tests[index])
            pdf = fault.as_path_delay_fault
            for i, line in enumerate(fault.path.lines):
                vi, vip = pdf.on_path_transition(c, i)
                assert (frame1[line], frame2[line]) == (vi, vip), (fault, line)
            checked += 1
        assert checked > 0
