"""Randomized cross-validation: the TPDF pipeline vs exhaustive enumeration.

For seeded mini circuits (few enough free inputs to enumerate every
broadside test), the complete pipeline's detected/undetectable verdicts
must match brute force exactly, and undetectable claims must never have a
counterexample.  This is the strongest soundness/completeness check in
the suite: it exercises PODEM, the implication engine, the preprocessing
conflicts, the heuristic, and branch-and-bound together on circuits none
of them were tuned on.
"""

import itertools

import pytest

from repro.atpg.tpdf import ABORTED, DETECTED, TpdfPipeline
from repro.circuits.generator import GeneratorSpec, generate
from repro.faults.lists import tpdf_list_all_paths
from repro.faults.pdfsim import tpdf_detection_words
from repro.logic.simulator import make_broadside_test


def _exhaustive_words(circuit, faults):
    tests = [
        make_broadside_test(circuit, s1, v1, v2)
        for s1 in itertools.product((0, 1), repeat=len(circuit.flops))
        for v1 in itertools.product((0, 1), repeat=len(circuit.inputs))
        for v2 in itertools.product((0, 1), repeat=len(circuit.inputs))
    ]
    return tpdf_detection_words(circuit, faults, tests)


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_pipeline_matches_exhaustive_on_random_minis(seed):
    spec = GeneratorSpec(
        name=f"mini{seed}",
        n_inputs=3,
        n_outputs=2,
        n_flops=3,
        n_gates=22,
        seed=seed,
    )
    circuit = generate(spec)
    faults = tpdf_list_all_paths(circuit, max_paths=400)
    pipeline = TpdfPipeline(circuit, heuristic_time_limit=0.5, bnb_time_limit=2.0)
    report = pipeline.run(faults)
    words = _exhaustive_words(circuit, faults)
    for fault, outcome in report.outcomes.items():
        truth = bool(words[fault])
        if outcome.status == ABORTED:
            continue  # aborts are allowed, misclassifications are not
        assert (outcome.status == DETECTED) == truth, (seed, fault)


@pytest.mark.parametrize("seed", [5, 6])
def test_certificates_on_random_minis(seed):
    """Every detection certificate replays under fault simulation."""
    spec = GeneratorSpec(
        name=f"minicert{seed}",
        n_inputs=4,
        n_outputs=2,
        n_flops=2,
        n_gates=26,
        seed=seed,
    )
    circuit = generate(spec)
    faults = tpdf_list_all_paths(circuit, max_paths=600)
    pipeline = TpdfPipeline(circuit, heuristic_time_limit=0.5, bnb_time_limit=1.0)
    report = pipeline.run(faults)
    detected = 0
    for fault, outcome in report.outcomes.items():
        if outcome.status == DETECTED and outcome.test is not None:
            assert tpdf_detection_words(circuit, [fault], [outcome.test])[fault]
            detected += 1
    assert detected > 0
