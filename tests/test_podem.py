"""Tests for PODEM: correctness against exhaustive enumeration."""

import itertools
import random

import pytest

from repro.atpg.podem import (
    ABORTED,
    DETECTED,
    Podem,
    UNDETECTABLE,
    simulate_good_faulty,
)
from repro.circuits.benchmarks import get_circuit
from repro.circuits.generator import GeneratorSpec, generate
from repro.circuits.netlist import Circuit
from repro.faults.models import StuckAtFault
from repro.logic.patterns import Pattern
from repro.faults.fsim import stuck_at_detection_words
from repro.logic.values import X


def redundant_circuit():
    """o = OR(a, NOT(a)) is constant 1: o s-a-1 is undetectable."""
    c = Circuit(name="red")
    c.add_input("a")
    c.add_gate("na", "NOT", ["a"])
    c.add_gate("o", "OR", ["a", "na"])
    c.add_output("o")
    c.validate()
    return c


class TestGoodFaulty:
    def test_fault_site_forced(self):
        c = redundant_circuit()
        good, faulty = simulate_good_faulty(c, {"a": 1}, StuckAtFault("na", 1))
        assert good["na"] == 0
        assert faulty["na"] == 1

    def test_input_fault(self):
        c = redundant_circuit()
        good, faulty = simulate_good_faulty(c, {"a": 1}, StuckAtFault("a", 0))
        assert good["a"] == 1 and faulty["a"] == 0
        assert faulty["na"] == 1

    def test_x_propagation(self):
        c = redundant_circuit()
        good, faulty = simulate_good_faulty(c, {}, StuckAtFault("a", 0))
        assert good["a"] == X
        assert faulty["a"] == 0


class TestAgainstExhaustive:
    def _exhaustive_detectable(self, circuit, fault):
        inputs = circuit.comb_input_lines
        patterns = [
            Pattern(
                state=tuple(bits[len(circuit.inputs):]),
                pi=tuple(bits[: len(circuit.inputs)]),
            )
            for bits in itertools.product((0, 1), repeat=len(inputs))
        ]
        words = stuck_at_detection_words(circuit, patterns, [fault])
        return bool(words[fault])

    def test_combinational_faults_match_exhaustive(self):
        """Every stuck-at classification agrees with brute force."""
        spec = GeneratorSpec(
            name="podem-mini", n_inputs=5, n_outputs=3, n_flops=2, n_gates=30
        )
        c = generate(spec)
        podem = Podem(c, observation=c.observation_lines, backtrack_limit=5000)
        rng = random.Random(0)
        lines = rng.sample(c.lines, 12)
        checked_undet = 0
        for line in lines:
            for v in (0, 1):
                fault = StuckAtFault(line, v)
                result = podem.run(fault)
                truth = self._exhaustive_detectable(c, fault)
                assert result.status != ABORTED
                assert (result.status == DETECTED) == truth, fault
                if result.status == UNDETECTABLE:
                    checked_undet += 1
                if result.status == DETECTED:
                    # The returned cube must really detect the fault.
                    pattern = Pattern(
                        state=tuple(
                            result.assignments.get(q, 0) for q in c.state_lines
                        ),
                        pi=tuple(result.assignments.get(p, 0) for p in c.inputs),
                    )
                    words = stuck_at_detection_words(c, [pattern], [fault])
                    assert words[fault] == 1, fault

    def test_redundant_fault_proven_undetectable(self):
        c = redundant_circuit()
        podem = Podem(c)
        assert podem.run(StuckAtFault("o", 1)).status == UNDETECTABLE
        assert podem.run(StuckAtFault("o", 0)).status == DETECTED


class TestConstraintsAndFrozen:
    def test_constraints_respected(self):
        c = get_circuit("s27")
        podem = Podem(c, observation=c.observation_lines)
        fault = StuckAtFault("G14", 0)  # G14 = NOT(G0)
        result = podem.run(fault, constraints={"G1": 1})
        assert result.status == DETECTED
        from repro.logic.simulator import simulate_comb

        values = simulate_comb(c, result.assignments)
        assert values["G1"] == 1

    def test_impossible_constraint_undetectable(self):
        c = redundant_circuit()
        podem = Podem(c)
        result = podem.run(StuckAtFault("na", 0), constraints={"o": 0})
        assert result.status == UNDETECTABLE

    def test_frozen_inputs_never_changed(self):
        c = get_circuit("s27")
        podem = Podem(c, observation=c.observation_lines)
        frozen = {"G0": 1, "G5": 0}
        result = podem.run(StuckAtFault("G12", 0), frozen=frozen)
        if result.status == DETECTED:
            for line, v in frozen.items():
                assert result.assignments[line] == v

    def test_backtrack_limit_aborts(self):
        spec = GeneratorSpec(
            name="podem-abort", n_inputs=8, n_outputs=4, n_flops=4, n_gates=120
        )
        c = generate(spec)
        podem = Podem(c, observation=c.observation_lines, backtrack_limit=0)
        statuses = set()
        for line in c.lines[:40]:
            statuses.add(podem.run(StuckAtFault(line, 0)).status)
        # With a zero backtrack budget at least some searches must abort.
        assert statuses <= {DETECTED, UNDETECTABLE, ABORTED}
