"""Tests for COP signal probabilities and the weighted TPG."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist.weighted import (
    WeightedTpg,
    choose_weight,
    realisable_weights,
    weights_from_cop,
)
from repro.circuits.benchmarks import get_circuit
from repro.circuits.netlist import Circuit
from repro.logic.probability import (
    gate_one_probability,
    launch_probability,
    resistant_lines,
    signal_probabilities,
)
from repro.circuits.gates import GateType


class TestCop:
    def test_gate_formulas(self):
        assert gate_one_probability(GateType.AND, [0.5, 0.5]) == pytest.approx(0.25)
        assert gate_one_probability(GateType.NAND, [0.5, 0.5]) == pytest.approx(0.75)
        assert gate_one_probability(GateType.OR, [0.5, 0.5]) == pytest.approx(0.75)
        assert gate_one_probability(GateType.NOR, [0.5, 0.5]) == pytest.approx(0.25)
        assert gate_one_probability(GateType.XOR, [0.5, 0.5]) == pytest.approx(0.5)
        assert gate_one_probability(GateType.NOT, [0.3]) == pytest.approx(0.7)

    @given(st.lists(st.floats(0, 1), min_size=2, max_size=4))
    def test_probabilities_stay_in_unit_interval(self, p):
        for gt in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
                   GateType.XOR, GateType.XNOR):
            v = gate_one_probability(gt, p)
            assert -1e-9 <= v <= 1 + 1e-9

    def test_cop_matches_simulation_on_tree(self):
        """On fanout-free logic COP is exact; validate by sampling."""
        import random

        c = Circuit(name="tree")
        for pi in ("a", "b", "cc", "d"):
            c.add_input(pi)
        c.add_gate("n1", "AND", ["a", "b"])
        c.add_gate("n2", "OR", ["cc", "d"])
        c.add_gate("o", "NAND", ["n1", "n2"])
        c.add_output("o")
        c.validate()
        prob = signal_probabilities(c)
        rng = random.Random(0)
        from repro.logic.simulator import simulate_comb

        n, ones = 4000, {line: 0 for line in c.lines}
        for _ in range(n):
            values = simulate_comb(
                c, {pi: rng.randint(0, 1) for pi in c.inputs}
            )
            for line in c.lines:
                ones[line] += values[line]
        for line in c.lines:
            assert prob[line] == pytest.approx(ones[line] / n, abs=0.04)

    def test_deep_and_chain_is_resistant(self):
        """A wide AND cone has a tiny 1-probability: flagged as resistant."""
        c = Circuit(name="andchain")
        inputs = [c.add_input(f"i{k}") for k in range(8)]
        c.add_gate("w", "AND", inputs[:4])
        c.add_gate("x", "AND", inputs[4:])
        c.add_gate("o", "AND", ["w", "x"])
        c.add_output("o")
        c.validate()
        prob = signal_probabilities(c)
        assert prob["o"] == pytest.approx(1 / 256)
        assert "o" in resistant_lines(prob, threshold=0.02)
        assert launch_probability(prob, "o", "rise") < 0.01

    def test_sequential_fixpoint(self):
        c = get_circuit("s298")
        prob = signal_probabilities(c)
        assert all(0.0 <= p <= 1.0 for p in prob.values())
        assert len(prob) == c.num_lines


class TestWeights:
    def test_realisable_set(self):
        weights = realisable_weights(3)
        values = {round(w, 4) for w, _, _ in weights}
        assert values == {0.5, 0.25, 0.75, 0.125, 0.875}

    def test_choose_weight(self):
        assert choose_weight(0.95, 4)[0] == pytest.approx(1 - 1 / 16)
        assert choose_weight(0.5, 4) == (0.5, 1, "direct")
        assert choose_weight(0.1, 3)[0] == pytest.approx(0.125)

    def test_weights_from_cop_bounded(self):
        c = get_circuit("s298")
        weights = weights_from_cop(c)
        assert set(weights) == set(c.inputs)
        assert all(0.0 <= w <= 1.0 for w in weights.values())


class TestWeightedTpg:
    def test_empirical_weights_match_plan(self):
        c = get_circuit("s344")
        tpg = WeightedTpg.for_circuit(
            c, weights={pi: 0.875 for pi in c.inputs}, max_taps=3
        )
        seq = tpg.sequence(99, 4000)
        for j, (weight, _, _) in enumerate(tpg.plan):
            ones = sum(v[j] for v in seq) / len(seq)
            assert ones == pytest.approx(weight, abs=0.05)

    def test_deterministic(self):
        c = get_circuit("s298")
        tpg = WeightedTpg.for_circuit(c)
        assert tpg.sequence(5, 30) == tpg.sequence(5, 30)

    def test_requires_seed(self):
        c = get_circuit("s298")
        with pytest.raises(RuntimeError):
            WeightedTpg.for_circuit(c).next_vector()

    def test_plugs_into_builtin_generator(self):
        """The weighted TPG drives the Chapter 4 flow unchanged."""
        from repro.core.builtin_gen import BuiltinGenConfig, BuiltinGenerator
        from repro.faults.collapse import collapse_transition
        from repro.faults.lists import all_transition_faults

        c = get_circuit("s298")
        faults = collapse_transition(c, all_transition_faults(c))
        tpg = WeightedTpg.for_circuit(c)
        cfg = BuiltinGenConfig(segment_length=80, time_limit=8, rng_seed=4)
        result = BuiltinGenerator(c, faults, None, tpg=tpg, config=cfg).run()
        assert result.coverage > 10.0
