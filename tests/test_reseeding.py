"""Tests for LFSR reseeding (GF(2) seed solving)."""

import random

import pytest

from repro.bist.lfsr import Lfsr
from repro.bist.reseeding import (
    output_basis,
    register_values_for_vector,
    seed_for_vector,
    solve_seed,
)
from repro.bist.tpg import DevelopedTpg
from repro.circuits.benchmarks import get_circuit
from repro.logic.values import X


class TestBasis:
    def test_basis_is_linear(self):
        """The stream of any seed is the XOR of its basis rows."""
        n, length = 12, 30
        basis = output_basis(n, length)
        rng = random.Random(0)
        for _ in range(10):
            seed = rng.randrange(1, 1 << n)
            expect = 0
            for i in range(n):
                if (seed >> i) & 1:
                    expect ^= basis[i]
            lfsr = Lfsr(n=n, seed=seed)
            stream = 0
            for t in range(length):
                if lfsr.step():
                    stream |= 1 << t
            assert stream == expect


class TestSolveSeed:
    def test_satisfies_constraints(self):
        rng = random.Random(1)
        solved = 0
        for _ in range(20):
            constraints = [
                (rng.randrange(0, 40), rng.randint(0, 1)) for _ in range(10)
            ]
            # Deduplicate positions (conflicting duplicates are legal but
            # make random instances trivially unsat).
            seen = {}
            for pos, bit in constraints:
                seen[pos] = bit
            constraints = sorted(seen.items())
            seed = solve_seed(16, constraints)
            if seed is None:
                continue
            lfsr = Lfsr(n=16, seed=seed)
            stream = [lfsr.step() for _ in range(41)]
            for pos, bit in constraints:
                assert stream[pos] == bit
            solved += 1
        assert solved >= 15  # random 10-of-16 systems are usually solvable

    def test_empty_constraints(self):
        assert solve_seed(8, []) == 1

    def test_unsolvable_detected(self):
        # More independent constraints than seed bits must eventually fail.
        rng = random.Random(3)
        failures = 0
        for trial in range(10):
            constraints = [(pos, rng.randint(0, 1)) for pos in range(12)]
            if solve_seed(4, constraints) is None:
                failures += 1
        assert failures > 0


class TestSeedForVector:
    def test_embeds_vector(self):
        c = get_circuit("s344")  # 9 inputs, mixed cube
        tpg = DevelopedTpg.for_circuit(c)
        rng = random.Random(2)
        hits = 0
        for _ in range(10):
            vector = [rng.randint(0, 1) for _ in c.inputs]
            seed = seed_for_vector(tpg, vector, at_cycle=1)
            if seed is None:
                continue
            produced = tpg.sequence(seed, 1)[0]
            assert produced == vector
            hits += 1
        assert hits >= 8

    def test_embeds_at_later_cycle(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        vector = [1, 0, 1]
        seed = seed_for_vector(tpg, vector, at_cycle=5)
        assert seed is not None
        assert tpg.sequence(seed, 5)[4] == vector

    def test_x_entries_unconstrained(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        seed = seed_for_vector(tpg, [1, X, X], at_cycle=1)
        assert seed is not None
        assert tpg.sequence(seed, 1)[0][0] == 1

    def test_register_values_respect_bias_gates(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        bits = register_values_for_vector(tpg, [1, 0, 1])
        assert bits is not None
        assert len(bits) == tpg.n_register_bits

    def test_at_cycle_validation(self):
        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        with pytest.raises(ValueError):
            seed_for_vector(tpg, [1, 0, 1], at_cycle=0)


class TestSeedForVectors:
    def test_embed_broadside_test_pi_pair(self):
        """Embed a deterministic test's (v1, v2) at consecutive cycles."""
        from repro.bist.reseeding import seed_for_vectors

        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        rng = random.Random(9)
        hits = 0
        for _ in range(10):
            v1 = [rng.randint(0, 1) for _ in c.inputs]
            v2 = [rng.randint(0, 1) for _ in c.inputs]
            seed = seed_for_vectors(tpg, [(3, v1), (4, v2)])
            if seed is None:
                # Genuinely possible: a 0 on an OR-biased input forces its
                # whole register window to 0, freezing the adjacent cycle.
                continue
            seq = tpg.sequence(seed, 4)
            assert seq[2] == v1 and seq[3] == v2
            hits += 1
        assert hits >= 3

    def test_conflicting_overlap_returns_none_or_solves(self):
        from repro.bist.reseeding import seed_for_vectors

        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        # Same cycle, contradictory vectors: always unsolvable.
        assert seed_for_vectors(tpg, [(1, [1, 1, 1]), (1, [0, 1, 1])]) is None

    def test_cycle_validation(self):
        from repro.bist.reseeding import seed_for_vectors

        c = get_circuit("s298")
        tpg = DevelopedTpg.for_circuit(c)
        with pytest.raises(ValueError):
            seed_for_vectors(tpg, [(0, [1, 0, 1])])
