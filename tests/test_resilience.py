"""Unit tests for the resilience layer: policy, faults, checkpoints, deadlines."""

import json
import time

import pytest

from repro.resilience import faultpoints
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointJournal,
    RESUME_SCHEMA,
    fingerprint_of,
)
from repro.resilience.deadline import (
    clamp_budget,
    clear_task_deadline,
    remaining_budget,
    set_task_deadline,
    task_deadline,
)
from repro.resilience.faultpoints import FaultSpec, InjectedFault
from repro.resilience.policy import RetryPolicy, TaskFailure


@pytest.fixture(autouse=True)
def _clean_state():
    faultpoints.install(None)
    clear_task_deadline()
    yield
    faultpoints.install(None)
    clear_task_deadline()


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        p = RetryPolicy(backoff_base_s=0.05, backoff_factor=2.0, backoff_cap_s=2.0)
        assert p.backoff_s(0) == pytest.approx(0.05)
        assert p.backoff_s(1) == pytest.approx(0.10)
        assert p.backoff_s(2) == pytest.approx(0.20)
        assert p.backoff_s(10) == 2.0  # capped
        assert [p.backoff_s(i) for i in range(4)] == [
            p.backoff_s(i) for i in range(4)
        ]

    def test_task_overrides_win(self):
        p = RetryPolicy(max_retries=2, timeout_s=30.0)
        assert p.effective_timeout(None) == 30.0
        assert p.effective_timeout(5.0) == 5.0
        assert p.effective_retries(None) == 2
        assert p.effective_retries(0) == 0

    def test_failure_describe(self):
        f = TaskFailure(key="t/x", kind="timeout", message="m", attempts=3)
        assert f.describe() == "FAILED: timeout after 3 tries"
        one = TaskFailure(key="t/x", kind="crash", message="m", attempts=1)
        assert one.describe() == "FAILED: crash after 1 try"


class TestFaultpoints:
    def test_parse_triples(self):
        specs = faultpoints.parse("runner.task:s298:crash_once, a:b:flaky3")
        assert specs == [
            FaultSpec(point="runner.task", key="s298", mode="crash_once"),
            FaultSpec(point="a", key="b", mode="flaky3"),
        ]

    def test_parse_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="nocolons"):
            faultpoints.parse("nocolons")

    def test_parse_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="explode"):
            faultpoints.parse("runner.task:s298:explode")

    def test_error_mode_raises_every_attempt(self):
        faultpoints.install("p:key:error")
        for attempt in (0, 1, 5):
            with pytest.raises(InjectedFault):
                faultpoints.check("p", "task/key", attempt)

    def test_once_modes_fire_only_on_first_attempt(self):
        faultpoints.install("p:key:error_once")
        with pytest.raises(InjectedFault):
            faultpoints.check("p", "task/key", 0)
        faultpoints.check("p", "task/key", 1)  # retry succeeds

    def test_flaky_fires_first_n_attempts(self):
        faultpoints.install("p:key:flaky2")
        for attempt in (0, 1):
            with pytest.raises(InjectedFault):
                faultpoints.check("p", "task/key", attempt)
        faultpoints.check("p", "task/key", 2)

    def test_point_and_key_must_match(self):
        faultpoints.install("p:s298:error")
        faultpoints.check("other.point", "s298", 0)
        faultpoints.check("p", "s344", 0)
        with pytest.raises(InjectedFault):
            faultpoints.check("p", "table4.3/s298", 0)

    def test_inline_crash_raises_instead_of_exiting(self):
        faultpoints.install("p:key:crash")
        with pytest.raises(InjectedFault):
            faultpoints.check("p", "key", 0, in_worker=False)

    def test_install_none_disarms(self):
        faultpoints.install("p:key:error")
        faultpoints.install(None)
        faultpoints.check("p", "key", 0)
        assert faultpoints.active_spec() is None

    def test_active_spec_round_trips(self):
        faultpoints.install("p:key:flaky2,q:r:hang_once")
        assert faultpoints.parse(faultpoints.active_spec()) == faultpoints.parse(
            "p:key:flaky2,q:r:hang_once"
        )


class TestNetFaults:
    def test_parse_accepts_every_net_mode(self):
        for mode in sorted(faultpoints.NET_MODES):
            for suffix in ("", "_once"):
                specs = faultpoints.parse(f"net:worker.reply:{mode}{suffix}")
                assert specs == [
                    FaultSpec(point="net", key="worker.reply", mode=f"{mode}{suffix}")
                ]

    def test_parse_rejects_unknown_net_mode(self):
        with pytest.raises(ValueError, match="sever"):
            faultpoints.parse("net:worker.reply:sever")

    def test_check_never_fires_net_modes(self):
        faultpoints.install("net:key:drop,net:key:garbage")
        faultpoints.check("net", "task/key", 0)  # no raise, no exit

    def test_net_action_matches_by_label_substring(self):
        faultpoints.install("net:worker.pong:drop")
        assert faultpoints.net_action("worker.pong") == "drop"
        assert faultpoints.net_action("worker.reply") is None
        assert faultpoints.net_action("coordinator.task") is None

    def test_net_action_once_fires_on_first_matching_frame_only(self):
        faultpoints.install("net:worker.reply:garbage_once")
        assert faultpoints.net_action("worker.reply") == "garbage"
        assert faultpoints.net_action("worker.reply") is None
        faultpoints.install("net:worker.reply:garbage_once")  # re-arm resets
        assert faultpoints.net_action("worker.reply") == "garbage"

    def _pipe_pair(self, role="worker"):
        import multiprocessing

        a, b = multiprocessing.Pipe()
        return faultpoints.ChaosConnection(a, role=role), b

    def test_clean_send_and_tag_labels(self):
        conn, peer = self._pipe_pair()
        try:
            conn.send(("reply", 1, 0, ("payload",)))
            conn.send(None)
            assert peer.recv() == ("reply", 1, 0, ("payload",))
            assert peer.recv() is None
        finally:
            conn.close()
            peer.close()

    def test_drop_swallows_only_matching_frames(self):
        faultpoints.install("net:worker.pong:drop")
        conn, peer = self._pipe_pair()
        try:
            conn.send(("pong", 1))
            conn.send(("reply", 1, 0, ("ok",)))
            assert peer.recv() == ("reply", 1, 0, ("ok",))
            assert not peer.poll(0.05)
        finally:
            conn.close()
            peer.close()

    def test_dup_delivers_twice(self):
        faultpoints.install("net:worker.reply:dup")
        conn, peer = self._pipe_pair()
        try:
            conn.send(("reply", 1, 0, ("ok",)))
            assert peer.recv() == ("reply", 1, 0, ("ok",))
            assert peer.recv() == ("reply", 1, 0, ("ok",))
        finally:
            conn.close()
            peer.close()

    @pytest.mark.parametrize("mode", ["garbage", "truncate"])
    def test_corrupt_modes_break_unpickling_deterministically(self, mode):
        import pickle

        faultpoints.install(f"net:worker.reply:{mode}")
        conn, peer = self._pipe_pair()
        frames = []
        try:
            conn.send(("reply", 1, 0, ("ok",)))
            frames.append(peer.recv_bytes())
            with pytest.raises(Exception):
                pickle.loads(frames[0])
        finally:
            conn.close()
            peer.close()
        # Seeded: a re-armed connection corrupts the same frame the same way.
        faultpoints.install(f"net:worker.reply:{mode}")
        conn, peer = self._pipe_pair()
        try:
            conn.send(("reply", 1, 0, ("ok",)))
            assert peer.recv_bytes() == frames[0]
        finally:
            conn.close()
            peer.close()

    def test_delay_still_delivers(self):
        faultpoints.install("net:worker.reply:delay_once")
        conn, peer = self._pipe_pair()
        try:
            t0 = time.monotonic()
            conn.send(("reply", 1, 0, ("ok",)))
            assert peer.recv() == ("reply", 1, 0, ("ok",))
            assert time.monotonic() - t0 >= faultpoints.NET_DELAY_S
        finally:
            conn.close()
            peer.close()


class TestFingerprint:
    def test_stable_across_dict_ordering(self):
        a = fingerprint_of({"targets": ("s27",), "config": {"x": 1, "y": 2}})
        b = fingerprint_of({"config": {"y": 2, "x": 1}, "targets": ("s27",)})
        assert a == b

    def test_distinct_across_params(self):
        a = fingerprint_of({"targets": ("s27",)})
        b = fingerprint_of({"targets": ("s298",)})
        assert a != b

    def test_handles_dataclasses(self):
        assert fingerprint_of(RetryPolicy()) == fingerprint_of(RetryPolicy())
        assert fingerprint_of(RetryPolicy()) != fingerprint_of(
            RetryPolicy(max_retries=9)
        )


class TestCheckpointJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        fp = fingerprint_of({"t": 1})
        j = CheckpointJournal.open(path, fingerprint=fp)
        j.record("row/a", {"value": 41}, snapshot={"counters": {"c": 1}})
        j2 = CheckpointJournal.open(path, fingerprint=fp, resume=True)
        assert j2.has("row/a") and not j2.has("row/b")
        assert j2.result("row/a") == {"value": 41}
        assert j2.snapshot("row/a") == {"counters": {"c": 1}}
        assert len(j2) == 1

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointJournal.open(path, fingerprint="aaaa").record("k", 1)
        with pytest.raises(CheckpointError, match="different campaign"):
            CheckpointJournal.open(path, fingerprint="bbbb", resume=True)

    def test_truncated_tail_is_dropped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        fp = "feedbeef"
        j = CheckpointJournal.open(path, fingerprint=fp)
        j.record("row/a", 1)
        j.record("row/b", 2)
        # Simulate a kill mid-write: chop the final line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - 20])
        j2 = CheckpointJournal.open(path, fingerprint=fp, resume=True)
        assert j2.has("row/a") and not j2.has("row/b")

    def test_resume_false_truncates(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointJournal.open(path, fingerprint="aaaa").record("k", 1)
        j = CheckpointJournal.open(path, fingerprint="aaaa", resume=False)
        assert not j.has("k")
        assert len(path.read_text().splitlines()) == 1  # header only

    def test_header_carries_schema(self, tmp_path, monkeypatch):
        from repro.core import kernel

        monkeypatch.delenv(kernel.ENV_VAR, raising=False)
        path = tmp_path / "ck.jsonl"
        CheckpointJournal.open(path, fingerprint="aaaa")
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "schema": RESUME_SCHEMA,
            "fingerprint": "aaaa",
            "kernel": "word",
        }

    def test_header_kernel_is_provenance_only(self, tmp_path, monkeypatch):
        # A journal written under one backend resumes under the other:
        # the backends are bit-identical, so the header field is purely
        # informational and never gates a resume.
        from repro.core import kernel

        path = tmp_path / "ck.jsonl"
        monkeypatch.setenv(kernel.ENV_VAR, "array")
        CheckpointJournal.open(path, fingerprint="aaaa").record("k", 1)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kernel"] == "array"
        monkeypatch.delenv(kernel.ENV_VAR)
        j = CheckpointJournal.open(path, fingerprint="aaaa", resume=True)
        assert j.has("k") and j.result("k") == 1

    def test_non_journal_file_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(CheckpointError, match="bad header"):
            CheckpointJournal.open(path, fingerprint="aaaa", resume=True)


class TestDeadline:
    def test_unset_means_unbounded(self):
        assert task_deadline() is None
        assert remaining_budget() is None
        assert clamp_budget(4.0) == 4.0
        assert clamp_budget(None) is None

    def test_set_and_clamp(self):
        set_task_deadline(100.0)
        assert task_deadline() is not None
        left = remaining_budget()
        assert 99.0 < left <= 100.0
        assert clamp_budget(4.0) == 4.0  # own limit is tighter
        assert clamp_budget(None) == pytest.approx(left, abs=1.0)
        set_task_deadline(0.001)
        time.sleep(0.01)
        assert remaining_budget() == 0.0
        assert clamp_budget(4.0) == 0.0  # budget exhausted

    def test_clear(self):
        set_task_deadline(5.0)
        clear_task_deadline()
        assert task_deadline() is None

    def test_builtin_gen_clamps_to_task_budget(self):
        """An exhausted task budget stops the Fig 4.9 loop immediately."""
        from repro.circuits.benchmarks import get_circuit
        from repro.core.builtin_gen import BuiltinGenConfig, BuiltinGenerator
        from repro.faults.collapse import collapsed_transition_faults

        circuit = get_circuit("s27")
        faults = collapsed_transition_faults(circuit)
        set_task_deadline(0.0001)
        time.sleep(0.01)
        t0 = time.monotonic()
        result = BuiltinGenerator(
            circuit, faults, None, config=BuiltinGenConfig(segment_length=40)
        ).run()
        assert time.monotonic() - t0 < 5.0
        assert result.n_seeds == 0  # no segment fit in the spent budget
