"""End-to-end resilience campaigns: injected faults, degradation, resume.

These tests drive real worker crashes (``os._exit``), watchdog-killed
hangs, and flaky-then-succeed schedules through the self-healing pool via
:mod:`repro.resilience.faultpoints`, asserting the recovered campaign is
byte-identical to an uninjected run -- the determinism contract of the
retry design (same task kwargs => same derived seed => same row).
"""

import pytest

from repro import obs
from repro.core.builtin_gen import BuiltinGenConfig
from repro.experiments.runner import ExperimentTask, run_tasks
from repro.experiments.tables4 import render_table_4_3, run_table_4_3
from repro.resilience import faultpoints
from repro.resilience.checkpoint import CheckpointJournal, fingerprint_of
from repro.resilience.deadline import clear_task_deadline
from repro.resilience.policy import RetryPolicy, TaskFailure


@pytest.fixture(autouse=True)
def _clean_state():
    faultpoints.install(None)
    clear_task_deadline()
    obs.disable()
    obs.reset()
    yield
    faultpoints.install(None)
    clear_task_deadline()
    obs.disable()
    obs.reset()


def _square(x):
    return x * x


def _tasks(count=4, timeout_s=None, max_retries=None):
    return [
        ExperimentTask(
            key=f"sq/{i}",
            fn=_square,
            kwargs={"x": i},
            timeout_s=timeout_s,
            max_retries=max_retries,
        )
        for i in range(count)
    ]


#: A fast backoff so retry-heavy tests stay quick.
FAST = RetryPolicy(backoff_base_s=0.01, backoff_cap_s=0.05)

TINY_43 = dict(
    targets=("s27", "s298"),
    drivers=("s953",),
    config=BuiltinGenConfig(
        segment_length=40, time_limit=None, rng_seed=2,
        q_limit=1, r_limit=2, max_sequences=2,
    ),
    n_sequences=2,
    func_length=30,
)


class TestInjectedFaults:
    def test_worker_crash_once_recovers_identically(self):
        clean = run_tasks(_tasks(), jobs=2, policy=FAST)
        faultpoints.install("runner.task:sq/1:crash_once")
        obs.enable()
        injected = run_tasks(_tasks(), jobs=2, policy=FAST)
        assert injected == clean == [0, 1, 4, 9]
        counters = obs.registry().counters
        assert counters["runner.worker_crashes"] == 1
        assert counters["runner.worker_respawns"] >= 1
        assert counters["runner.retries"] == 1
        assert counters["runner.tasks_completed"] == 4

    def test_hang_killed_by_watchdog_then_retried(self):
        clean = run_tasks(_tasks(timeout_s=0.5), jobs=2, policy=FAST)
        faultpoints.install("runner.task:sq/2:hang_once")
        obs.enable()
        injected = run_tasks(_tasks(timeout_s=0.5), jobs=2, policy=FAST)
        assert injected == clean == [0, 1, 4, 9]
        counters = obs.registry().counters
        assert counters["runner.timeouts"] == 1
        assert counters["runner.retries"] == 1

    def test_flaky_then_succeed(self):
        faultpoints.install("runner.task:sq/3:flaky2")
        obs.enable()
        out = run_tasks(_tasks(max_retries=2), jobs=2, policy=FAST)
        assert out == [0, 1, 4, 9]
        assert obs.registry().counters["runner.retries"] == 2

    def test_flaky_then_succeed_inline_matches_pool(self):
        faultpoints.install("runner.task:sq/3:flaky2")
        inline = run_tasks(_tasks(max_retries=2), jobs=1, policy=FAST)
        pooled = run_tasks(_tasks(max_retries=2), jobs=2, policy=FAST)
        assert inline == pooled == [0, 1, 4, 9]


class TestDegradation:
    def test_exhausted_retries_degrade_to_typed_failure(self):
        faultpoints.install("runner.task:sq/1:error")
        obs.enable()
        out = run_tasks(_tasks(max_retries=1), jobs=2, policy=FAST)
        assert out[0] == 0 and out[2] == 4 and out[3] == 9
        failure = out[1]
        assert isinstance(failure, TaskFailure)
        assert failure.key == "sq/1"
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert "InjectedFault" in failure.message
        assert obs.registry().counters["runner.task_failures"] == 1

    def test_inline_degrades_the_same_way(self):
        faultpoints.install("runner.task:sq/1:error")
        out = run_tasks(_tasks(max_retries=1), jobs=1, policy=FAST)
        assert isinstance(out[1], TaskFailure)
        assert out[1].attempts == 2
        assert [r for i, r in enumerate(out) if i != 1] == [0, 4, 9]

    def test_crashing_worker_exhausts_to_crash_failure(self):
        faultpoints.install("runner.task:sq/0:crash")
        out = run_tasks(_tasks(max_retries=1), jobs=2, policy=FAST)
        failure = out[0]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "crash"
        assert out[1:] == [1, 4, 9]


class TestTableCampaigns:
    def test_table_4_3_crash_once_byte_identical(self):
        """A crashed-and-retried row reproduces the uninjected table exactly."""
        clean = render_table_4_3(run_table_4_3(jobs=1, **TINY_43))
        faultpoints.install("runner.task:s27:crash_once")
        injected = render_table_4_3(
            run_table_4_3(jobs=2, policy=FAST, **TINY_43)
        )
        assert injected == clean

    def test_table_4_3_failed_row_renders_degraded(self):
        faultpoints.install("runner.task:s27:error")
        cases = run_table_4_3(jobs=1, max_retries=0, policy=FAST, **TINY_43)
        assert any(isinstance(c, TaskFailure) for c in cases)
        out = render_table_4_3(cases)
        assert "!! s27: FAILED: error after 1 try" in out
        assert "s298" in out  # the healthy row still renders


class TestCheckpointResume:
    def test_failed_rows_rerun_on_resume(self, tmp_path):
        """A campaign killed partway re-runs only its unfinished rows."""
        path = tmp_path / "ck.jsonl"
        fp = fingerprint_of({"suite": "sq", "n": 4})
        # First run: one row fails (and is therefore not journaled).
        faultpoints.install("runner.task:sq/2:error")
        obs.enable()
        first = run_tasks(
            _tasks(max_retries=0),
            jobs=2,
            policy=FAST,
            checkpoint=CheckpointJournal.open(path, fingerprint=fp),
        )
        assert isinstance(first[2], TaskFailure)
        assert obs.registry().counters["runner.tasks_completed"] == 3
        # Second run, fault gone: resume re-runs just the failed row.
        faultpoints.install(None)
        obs.reset()
        obs.enable()
        second = run_tasks(
            _tasks(max_retries=0),
            jobs=2,
            policy=FAST,
            checkpoint=CheckpointJournal.open(path, fingerprint=fp, resume=True),
        )
        assert second == [0, 1, 4, 9]
        counters = obs.registry().counters
        assert counters["runner.tasks_resumed"] == 3
        assert counters["runner.tasks_completed"] == 1

    def test_table_4_3_resume_is_identical_and_skips_done_rows(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        clean = render_table_4_3(run_table_4_3(jobs=1, **TINY_43))
        full = run_table_4_3(jobs=1, checkpoint_path=str(path), **TINY_43)
        obs.enable()
        resumed = run_table_4_3(
            jobs=1, checkpoint_path=str(path), resume=True, **TINY_43
        )
        assert resumed == full
        assert render_table_4_3(resumed) == clean
        counters = obs.registry().counters
        assert counters["runner.tasks_resumed"] == 2
        assert "runner.tasks_completed" not in counters

    def test_snapshot_replayed_on_resume(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        fp = fingerprint_of({"suite": "sq"})
        obs.enable()
        run_tasks(
            _tasks(2),
            jobs=2,
            policy=FAST,
            checkpoint=CheckpointJournal.open(path, fingerprint=fp),
        )
        spans_first = obs.registry().counters.get("runner.tasks_completed")
        assert spans_first == 2
        obs.reset()
        obs.enable()
        run_tasks(
            _tasks(2),
            jobs=2,
            policy=FAST,
            checkpoint=CheckpointJournal.open(path, fingerprint=fp, resume=True),
        )
        counters = obs.registry().counters
        assert counters["runner.tasks_resumed"] == 2
        # The journaled worker snapshots were merged back into the
        # registry: their span events come back tagged with the task key.
        events = {e["attrs"].get("task") for e in obs.registry().events}
        assert {"sq/0", "sq/1"} <= events
