"""Tests for scan-chain partitioning, scan insertion, and waveforms."""

import pytest

from repro.circuits.benchmarks import get_circuit
from repro.circuits.scan import (
    ScanChains,
    broadside_waveform,
    insert_scan,
    se_transition_at_speed,
    skewed_load_waveform,
)
from repro.logic.simulator import next_state, simulate_comb


class TestPartition:
    def test_small_circuit_single_chain(self):
        chains = ScanChains.partition(get_circuit("s27"))
        assert chains.num_chains == 1
        assert chains.max_length == 3
        assert chains.num_cells == 3

    def test_rule_max_chains_min_length(self):
        c = get_circuit("s13207")  # 180 flops in the scaled stand-in
        chains = ScanChains.partition(c)
        assert chains.num_chains == 1  # 180 // 100 == 1
        chains2 = ScanChains.partition(c, min_length=50)
        assert chains2.num_chains == 3
        assert all(len(ch) >= 50 for ch in chains2.chains)

    def test_balanced(self):
        c = get_circuit("s13207")
        chains = ScanChains.partition(c, min_length=40)
        lengths = [len(ch) for ch in chains.chains]
        assert max(lengths) - min(lengths) <= 1

    def test_all_cells_covered_once(self):
        c = get_circuit("s298")
        chains = ScanChains.partition(c, min_length=5)
        cells = [q for ch in chains.chains for q in ch]
        assert sorted(cells) == sorted(c.state_lines)

    def test_chain_of(self):
        c = get_circuit("s298")
        chains = ScanChains.partition(c, min_length=5)
        q = c.state_lines[0]
        assert q in chains.chains[chains.chain_of(q)]
        with pytest.raises(KeyError):
            chains.chain_of("ghost")

    def test_no_flops(self):
        from repro.circuits.netlist import Circuit

        c = Circuit(name="comb")
        c.add_input("a")
        c.add_gate("n", "NOT", ["a"])
        c.add_output("n")
        assert ScanChains.partition(c).num_chains == 0


class TestInsertScan:
    def test_structure(self):
        c = get_circuit("s27")
        scanned = insert_scan(c)
        assert "SE" in scanned.inputs
        assert "SI0" in scanned.inputs
        assert len(scanned.flops) == len(c.flops)
        scanned.validate()

    def test_functional_mode_matches_original(self):
        """With SE=0 the scanned circuit computes the original next state."""
        c = get_circuit("s27")
        scanned = insert_scan(c)
        import random

        rng = random.Random(5)
        for _ in range(20):
            pis = {pi: rng.randint(0, 1) for pi in c.inputs}
            state = {q: rng.randint(0, 1) for q in c.state_lines}
            original = simulate_comb(c, pis | state)
            values = simulate_comb(scanned, pis | state | {"SE": 0, "SI0": 0})
            assert next_state(c, original) == tuple(
                values[f.d] for f in scanned.flops
            )

    def test_shift_mode_shifts(self):
        """With SE=1 each cell's next value is the previous cell (or SI)."""
        c = get_circuit("s27")
        chains = ScanChains.partition(c)
        scanned = insert_scan(c, chains)
        import random

        rng = random.Random(6)
        state = {q: rng.randint(0, 1) for q in c.state_lines}
        pis = {pi: rng.randint(0, 1) for pi in c.inputs}
        values = simulate_comb(scanned, pis | state | {"SE": 1, "SI0": 1})
        nxt = {f.q: values[f.d] for f in scanned.flops}
        chain = chains.chains[0]
        assert nxt[chain[0]] == 1  # scan-in
        for prev, cur in zip(chain, chain[1:]):
            assert nxt[cur] == state[prev]

    def test_scan_out_is_last_cell(self):
        c = get_circuit("s27")
        chains = ScanChains.partition(c)
        scanned = insert_scan(c, chains)
        assert chains.chains[0][-1] in scanned.outputs


class TestWaveforms:
    def test_broadside_se_change_is_slow(self):
        assert se_transition_at_speed(broadside_waveform(4)) is False

    def test_skewed_load_se_change_is_at_speed(self):
        assert se_transition_at_speed(skewed_load_waveform(4)) is True

    def test_phase_structure(self):
        wf = broadside_waveform(3)
        phases = [e.phase for e in wf]
        assert phases.count("launch") == 1
        assert phases.count("capture") == 1
        assert phases.count("shift") == 6
        launch = next(e for e in wf if e.phase == "launch")
        capture = next(e for e in wf if e.phase == "capture")
        assert capture.cycle == launch.cycle + 1
        assert launch.at_speed and capture.at_speed

    def test_skewed_launch_is_last_shift(self):
        wf = skewed_load_waveform(3)
        launch = next(e for e in wf if e.phase == "launch")
        assert launch.se == 1  # launched by the last shift
