"""Tests for the enhanced-scan and skewed-load test styles (Section 1.3)."""

import pytest

from repro.atpg.broadside import BroadsideAtpg
from repro.atpg.unroll import BROADSIDE, ENHANCED, SKEWED_LOAD, TwoFrameModel
from repro.circuits.benchmarks import get_circuit
from repro.circuits.scan import ScanChains
from repro.faults.fsim import TransitionFaultSimulator
from repro.faults.lists import all_transition_faults
from repro.logic.simulator import simulate_comb


class TestModels:
    def test_enhanced_state_free(self):
        c = get_circuit("s27")
        model = TwoFrameModel.build_enhanced(c)
        for q in c.state_lines:
            assert f"{q}@2" in model.model.inputs

    def test_skewed_shift_coupling(self):
        """In the model, q@2 equals the previous cell's q@1."""
        c = get_circuit("s27")
        chains = ScanChains.partition(c)
        model = TwoFrameModel.build_skewed(c, chains)
        chain = chains.chains[0]
        assignments = {f"{q}@1": (i % 2) for i, q in enumerate(c.state_lines)}
        assignments["SI0@2"] = 1
        values = simulate_comb(model.model, assignments)
        assert values[f"{chain[0]}@2"] == 1  # scan-in
        for prev, cur in zip(chain, chain[1:]):
            assert values[f"{cur}@2"] == assignments[f"{prev}@1"]

    def test_style_recorded(self):
        c = get_circuit("s27")
        assert TwoFrameModel.build(c).style == BROADSIDE
        assert TwoFrameModel.build_enhanced(c).style == ENHANCED
        assert TwoFrameModel.build_skewed(c).style == SKEWED_LOAD

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            BroadsideAtpg(get_circuit("s27"), style="levitating")


class TestToTest:
    def test_enhanced_s2_from_assignments(self):
        c = get_circuit("s27")
        atpg = BroadsideAtpg(c, style="enhanced")
        cube = {f"{q}@2": 1 for q in c.state_lines}
        test = atpg.model.to_broadside_test(cube)
        assert test.s2 == (1, 1, 1)

    def test_skewed_s2_is_shift(self):
        c = get_circuit("s27")
        atpg = BroadsideAtpg(c, style="skewed_load")
        chain = atpg.model.chains.chains[0]
        s1_bits = {f"{q}@1": (i % 2) for i, q in enumerate(c.state_lines)}
        test = atpg.model.to_broadside_test(s1_bits | {"SI0@2": 1})
        s1 = dict(zip(c.state_lines, test.s1))
        s2 = dict(zip(c.state_lines, test.s2))
        assert s2[chain[0]] == 1
        for prev, cur in zip(chain, chain[1:]):
            assert s2[cur] == s1[prev]


class TestCoverageOrdering:
    @pytest.fixture(scope="class")
    def results(self):
        c = get_circuit("s27")
        faults = all_transition_faults(c)
        out = {}
        for style in ("broadside", "skewed_load", "enhanced"):
            atpg = BroadsideAtpg(c, style=style)
            out[style] = atpg.generate_all(faults)
        return c, faults, out

    def test_enhanced_dominates(self, results):
        """Enhanced scan reaches the highest coverage (Section 1.3)."""
        _, _, out = results
        assert len(out["enhanced"].detected) >= len(out["broadside"].detected)
        assert len(out["enhanced"].detected) >= len(out["skewed_load"].detected)

    def test_detections_verified_by_fsim(self, results):
        """Each style's claimed detections replay under fault simulation."""
        c, _, out = results
        sim = TransitionFaultSimulator(c)
        for style, result in out.items():
            verified = sim.detected_faults(result.tests, list(result.detected))
            assert verified == result.detected, style

    def test_broadside_detected_subset_of_enhanced(self, results):
        """Any broadside-detectable fault is enhanced-scan detectable."""
        _, _, out = results
        assert out["broadside"].detected <= out["enhanced"].detected
