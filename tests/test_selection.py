"""Tests for the Chapter 3 path-selection procedure."""

import pytest

from repro.circuits.benchmarks import get_circuit
from repro.paths.selection import PathSelector


@pytest.fixture(scope="module")
def s298_selection():
    selector = PathSelector(get_circuit("s298"), closure_scan=24)
    result = selector.run(n=5, m=64, max_pool=2048)
    return selector, result


class TestRun:
    def test_requested_count_met_or_ties(self, s298_selection):
        _, result = s298_selection
        assert result.original_size >= 5

    def test_all_targets_potentially_detectable(self, s298_selection):
        _, result = s298_selection
        for fault in result.final_target:
            assert not result.records[fault].assignments.undetectable

    def test_final_superset_of_initial(self, s298_selection):
        _, result = s298_selection
        assert set(result.initial_target) <= set(result.final_target)

    def test_final_delay_never_exceeds_original(self, s298_selection):
        _, result = s298_selection
        for fault in result.final_target:
            record = result.records[fault]
            if record.final_delay is not None:
                assert record.final_delay <= record.original_delay + 1e-12

    def test_discovered_faults_marked(self, s298_selection):
        _, result = s298_selection
        for fault in result.final_target:
            record = result.records[fault]
            if record.added_by_procedure:
                assert fault not in result.initial_target

    def test_select_is_sorted_by_final_delay(self, s298_selection):
        _, result = s298_selection
        chosen = result.select(5)
        delays = [result.records[f].final_delay or 0.0 for f in chosen]
        assert delays == sorted(delays, reverse=True)
        assert len(chosen) <= 5

    def test_unique_count_bounded(self, s298_selection):
        _, result = s298_selection
        assert 0 <= result.unique_to_one_set(5) <= 10

    def test_undetectable_list_disjoint_from_target(self, s298_selection):
        _, result = s298_selection
        assert not set(result.undetectable) & set(result.final_target)


class TestAfterTg:
    def test_after_tg_at_most_final(self, s298_selection):
        """original >= final >= after-TG for any fault with a test."""
        selector, result = s298_selection
        checked = 0
        for fault in result.select(5):
            record = result.records[fault]
            if record.final_delay is None:
                continue
            after = selector.after_tg_delay(fault)
            if after is None:
                continue
            assert after <= record.final_delay + 1e-12
            assert record.final_delay <= record.original_delay + 1e-12
            checked += 1
        assert checked >= 1


class TestCaseOf:
    def test_case_pairs_round_trip(self, s298_selection):
        selector, result = s298_selection
        fault = result.final_target[0]
        assignments = result.records[fault].assignments
        case = selector.case_of(assignments)
        for name, pair in case.pins.items():
            assert assignments.paired_inputs()[name] == pair
