"""Campaign service conformance suite (``repro.service``).

Pins the contracts that make ``repro-eda serve`` a faithful front end
over the library:

* an HTTP-submitted campaign renders **byte-identically** to the direct
  library/CLI execution, on every executor backend;
* an identical resubmission is served from the content-addressed result
  cache without re-executing -- within one server (memo) and across
  server restarts (``--cache-dir``);
* admission control is typed and deterministic: 400 for malformed
  specs, 409 for quota, 429 (+ ``Retry-After``) for rate, 503 for a
  full queue;
* a worker killed mid-job is absorbed by the fleet's retry machinery --
  the job still completes with zero degraded rows;
* a service-submitted run lands in the experiment database rendering
  identically to the equivalent CLI run (modulo provenance fields).
"""

import contextlib
import heapq
import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import cache, expdb, obs
from repro.exec import (
    EXECUTOR_KINDS,
    InProcessExecutor,
    LocalPoolExecutor,
    RemoteExecutor,
)
from repro.resilience import faultpoints
from repro.resilience.deadline import clear_task_deadline
from repro.resilience.policy import RetryPolicy
from repro.service import CampaignService, JobManager, RateLimiter
from repro.service.ratelimit import TokenBucket
from repro.service.spec import SpecError, parse_request, parse_spec

REPO = Path(__file__).resolve().parent.parent

FAST = RetryPolicy(backoff_base_s=0.01, backoff_cap_s=0.05)

#: The fast Table 4.3 campaign (mirrors TINY_43 in test_executor_contract).
TINY_TABLE = {
    "kind": "table",
    "table": "4.3",
    "targets": ["s27", "s298"],
    "drivers": ["s953"],
    "segment_length": 40,
    "time_limit": None,
    "seed": 2,
    "q_limit": 1,
    "r_limit": 2,
    "max_sequences": 2,
    "n_sequences": 2,
    "func_length": 30,
}

#: A fast single-circuit generation campaign.
TINY_GEN = {"kind": "generate", "circuit": "s27", "length": 60, "time_limit": 5}


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    for var in ("REPRO_DB", "REPRO_DB_RUN", "REPRO_CACHE_DIR", faultpoints.ENV_VAR):
        monkeypatch.delenv(var, raising=False)
    faultpoints.install(None)
    clear_task_deadline()
    obs.disable()
    obs.reset()
    cache.reset()
    expdb.reset()
    yield
    faultpoints.install(None)
    clear_task_deadline()
    obs.disable()
    obs.reset()
    cache.reset()
    expdb.reset()


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def _spawn_workers(port, n=2, extra_env=None):
    env = os.environ.copy()
    env.pop(faultpoints.ENV_VAR, None)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}{REPO}"
    if extra_env:
        env.update(extra_env)
    return [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "worker",
                "--connect", f"127.0.0.1:{port}",
                "--connect-timeout", "60",
            ],
            cwd=REPO,
            env=env,
        )
        for _ in range(n)
    ]


@contextlib.contextmanager
def service_for(
    kind="inprocess",
    workers=2,
    extra_env=None,
    limiter=None,
    start_runner=True,
    **manager_kwargs,
):
    """A running :class:`CampaignService` over an executor of ``kind``.

    ``start_runner=False`` keeps submitted jobs queued forever -- the
    deterministic setup for quota/queue/ordering tests.
    """
    procs = []
    if kind == "inprocess":
        ex = InProcessExecutor(policy=FAST)
    elif kind == "pool":
        ex = LocalPoolExecutor(n_workers=workers, policy=FAST)
    else:
        ex = RemoteExecutor(listen=("127.0.0.1", 0), policy=FAST)
        procs = _spawn_workers(ex.address[1], n=workers, extra_env=extra_env)
        ex.wait_for_workers(workers, timeout_s=60.0)
    manager = JobManager(executor=ex, executor_kind=kind, **manager_kwargs)
    if not start_runner:
        manager.start = lambda: None  # jobs stay queued deterministically
    service = CampaignService(manager, limiter=limiter)
    try:
        service.start()
        yield service
    finally:
        service.close()
        ex.close()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def _request(service, method, path, body=None, headers=None):
    """One HTTP exchange; returns ``(status, headers, text)``."""
    host, port = service.address
    data = json.dumps(body).encode() if isinstance(body, (dict, list)) else body
    req = urllib.request.Request(
        f"http://{host}:{port}{path}", method=method, data=data, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, dict(resp.headers), resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read().decode()


def _submit(service, spec, headers=None):
    status, _, text = _request(service, "POST", "/v1/jobs", spec, headers)
    assert status == 202, text
    return json.loads(text)


def _wait_done(service, job_id, timeout=300.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, text = _request(service, "GET", f"/v1/jobs/{job_id}")
        assert status == 200, text
        doc = json.loads(text)
        if doc["state"] in ("done", "degraded", "failed"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


@pytest.fixture(scope="module")
def tiny_table_reference():
    """What the CLI renders for TINY_TABLE: the byte-identity baseline."""
    from repro.core.builtin_gen import BuiltinGenConfig
    from repro.experiments.tables4 import render_table_4_3, run_table_4_3

    config = BuiltinGenConfig(
        segment_length=40, time_limit=None, rng_seed=2,
        q_limit=1, r_limit=2, max_sequences=2,
    )
    rendered = render_table_4_3(
        run_table_4_3(
            targets=("s27", "s298"),
            drivers=("s953",),
            config=config,
            n_sequences=2,
            func_length=30,
        )
    )
    return rendered + "\n"


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------


class TestSpec:
    def test_table_defaults_match_cli(self):
        spec = parse_spec({"kind": "table", "table": "4.3"})
        assert spec.kind == "table" and spec.label == "4.3"
        assert spec.params["targets"] == ("s27", "s298")
        assert spec.params["drivers"] == ("s344", "s953")
        assert spec.params["segment_length"] == 120
        assert spec.params["time_limit"] == 10.0
        assert spec.params["seed"] == 1

    def test_generate_defaults_match_cli(self):
        spec = parse_spec({"kind": "generate", "circuit": "s27"})
        assert spec.label == "s27"
        assert spec.params == {
            "circuit": "s27", "driver": None, "length": 200,
            "time_limit": 30.0, "seed": 1,
        }

    @pytest.mark.parametrize(
        ("payload", "match"),
        [
            ({"kind": "bogus"}, "'kind' must be one of"),
            ({"kind": "generate"}, "'circuit' is required"),
            ({"kind": "generate", "circuit": "nope"}, "names no benchmark circuit"),
            ({"kind": "generate", "circuit": "s27", "length": 0}, "'length' must be >= 1"),
            ({"kind": "generate", "circuit": "s27", "oops": 1}, "unknown spec field"),
            ({"kind": "table", "table": "9.9"}, "'table' must be one of"),
            ({"kind": "table", "table": "4.3", "targets": []}, "non-empty list"),
            ("not a mapping", "must be a JSON object"),
        ],
    )
    def test_rejections_name_the_offender(self, payload, match):
        with pytest.raises(SpecError, match=match):
            parse_spec(payload)

    def test_priority_is_bounded_and_not_part_of_the_fingerprint(self):
        spec0, p0 = parse_request({**TINY_GEN, "priority": 7})
        spec1, p1 = parse_request(TINY_GEN)
        assert (p0, p1) == (7, 0)
        assert spec0.fingerprint() == spec1.fingerprint()
        assert spec0.result_key() == spec1.result_key()
        with pytest.raises(SpecError, match="'priority' must be within"):
            parse_request({**TINY_GEN, "priority": 101})

    def test_params_change_the_result_key(self):
        base = parse_spec(TINY_GEN)
        other = parse_spec({**TINY_GEN, "length": 61})
        assert base.result_key() != other.result_key()
        assert base.fingerprint() != other.fingerprint()

    def test_fingerprint_ignores_field_order(self):
        shuffled = dict(reversed(list(TINY_GEN.items())))
        assert parse_spec(TINY_GEN).fingerprint() == parse_spec(shuffled).fingerprint()


# ---------------------------------------------------------------------------
# Token buckets (deterministic via an injected clock)
# ---------------------------------------------------------------------------


class TestRateLimiter:
    def test_bucket_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        wait = bucket.acquire()
        assert wait == pytest.approx(1.0)
        now[0] += 1.5
        assert bucket.acquire() == 0.0

    def test_limiter_is_per_client(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: now[0])
        assert limiter.check("alice") == 0.0
        assert limiter.check("alice") > 0.0
        assert limiter.check("bob") == 0.0  # independent bucket

    def test_disabled_limiter_never_charges(self):
        limiter = RateLimiter(None)
        assert not limiter.enabled
        for _ in range(100):
            assert limiter.check("anyone") == 0.0


# ---------------------------------------------------------------------------
# Submit/status/result round trip on every executor backend
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_table_43_byte_identical_on_every_backend(
        self, kind, tiny_table_reference
    ):
        with service_for(kind) as service:
            doc = _submit(service, TINY_TABLE)
            assert doc["state"] in ("queued", "running")
            assert doc["kind"] == "table" and doc["label"] == "4.3"
            assert doc["rows_total"] == 2
            final = _wait_done(service, doc["id"])
            assert final["state"] == "done"
            assert final["failures"] == [] and final["error"] is None
            assert final["rows_done"] == 2
            status, _, text = _request(
                service, "GET", f"/v1/jobs/{doc['id']}/result"
            )
            assert status == 200
            assert text == tiny_table_reference

    def test_events_stream_replays_the_full_lifecycle(self):
        with service_for("inprocess") as service:
            doc = _submit(service, TINY_TABLE)
            # urllib blocks until the server closes the stream, i.e.
            # until the job reaches a terminal state -- so this also
            # exercises the live-follow path.
            status, headers, text = _request(
                service, "GET", f"/v1/jobs/{doc['id']}/events"
            )
            assert status == 200
            assert headers["Content-Type"] == "application/x-ndjson"
            events = [json.loads(line) for line in text.splitlines()]
            assert [e["seq"] for e in events] == list(range(len(events)))
            names = [e["event"] for e in events]
            assert names[0] == "queued" and names[-1] == "done"
            rows = [e for e in events if e["event"] == "row"]
            assert [r["key"] for r in rows] == ["table4.3/s27", "table4.3/s298"]


# ---------------------------------------------------------------------------
# Content-addressed result reuse
# ---------------------------------------------------------------------------


class TestCacheHit:
    def test_resubmit_is_served_from_memo_without_reexecuting(self):
        with service_for("inprocess") as service:
            first = _submit(service, TINY_GEN)
            _wait_done(service, first["id"])
            _, _, original = _request(
                service, "GET", f"/v1/jobs/{first['id']}/result"
            )
            again = _submit(service, TINY_GEN)
            # The submit response itself is already terminal: no queue
            # slot, no execution, straight from the content address.
            assert again["state"] == "done" and again["cached"] is True
            _, _, replay = _request(
                service, "GET", f"/v1/jobs/{again['id']}/result"
            )
            assert replay == original
            counters = service.manager.counters
            assert counters["cache_hits"] == 1
            assert counters["jobs_submitted"] == 2

    def test_cache_survives_a_server_restart(self, tmp_path):
        cache.configure(tmp_path / "artifacts")
        with service_for("inprocess") as service:
            doc = _submit(service, TINY_GEN)
            _wait_done(service, doc["id"])
            _, _, original = _request(
                service, "GET", f"/v1/jobs/{doc['id']}/result"
            )
        with service_for("inprocess") as service:
            doc = _submit(service, TINY_GEN)
            assert doc["state"] == "done" and doc["cached"] is True
            assert service.manager.counters["cache_hits"] == 1
            assert "jobs_completed" in service.manager.counters
            _, _, replay = _request(
                service, "GET", f"/v1/jobs/{doc['id']}/result"
            )
            assert replay == original

    def test_different_params_do_not_share_results(self, tmp_path):
        cache.configure(tmp_path / "artifacts")
        with service_for("inprocess") as service:
            doc = _submit(service, TINY_GEN)
            _wait_done(service, doc["id"])
            other = _submit(service, {**TINY_GEN, "length": 61})
            assert other["cached"] is False


# ---------------------------------------------------------------------------
# Admission control: quotas, queue bound, rate limiting
# ---------------------------------------------------------------------------


class TestAdmissionControl:
    def test_quota_409_golden(self):
        with service_for(
            "inprocess", start_runner=False, max_client_jobs=2
        ) as service:
            _submit(service, TINY_GEN, headers={"X-Client": "alice"})
            _submit(service, {**TINY_GEN, "seed": 2}, headers={"X-Client": "alice"})
            status, _, text = _request(
                service, "POST", "/v1/jobs", {**TINY_GEN, "seed": 3},
                headers={"X-Client": "alice"},
            )
            assert status == 409
            assert json.loads(text) == {
                "error": {
                    "status": 409,
                    "message": "client 'alice' already has 2 active job(s) (limit 2)",
                }
            }
            # Another client is unaffected.
            _submit(service, TINY_GEN, headers={"X-Client": "bob"})

    def test_full_queue_503_golden(self):
        with service_for("inprocess", start_runner=False, queue_limit=1) as service:
            _submit(service, TINY_GEN, headers={"X-Client": "a"})
            status, _, text = _request(
                service, "POST", "/v1/jobs", {**TINY_GEN, "seed": 2},
                headers={"X-Client": "b"},
            )
            assert status == 503
            assert json.loads(text) == {
                "error": {
                    "status": 503,
                    "message": "job queue is full (1 job(s) queued)",
                }
            }

    def test_rate_limit_429_golden(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: now[0])
        with service_for(
            "inprocess", start_runner=False, limiter=limiter
        ) as service:
            _submit(service, TINY_GEN, headers={"X-Client": "alice"})
            status, headers, text = _request(
                service, "POST", "/v1/jobs", TINY_GEN,
                headers={"X-Client": "alice"},
            )
            assert status == 429
            assert headers["Retry-After"] == "1"
            assert json.loads(text) == {
                "error": {
                    "status": 429,
                    "message": "rate limit exceeded for client 'alice'; "
                    "retry in 1.00s",
                }
            }
            now[0] += 1.5  # refill one token
            _submit(service, {**TINY_GEN, "seed": 9}, headers={"X-Client": "alice"})

    def test_priority_orders_the_queue(self):
        manager = JobManager(queue_limit=8)
        low = manager.submit(parse_spec(TINY_GEN), priority=-5, client="a")
        mid = manager.submit(parse_spec({**TINY_GEN, "seed": 2}), priority=0, client="b")
        high = manager.submit(parse_spec({**TINY_GEN, "seed": 3}), priority=50, client="c")
        drained = [
            heapq.heappop(manager._heap)[2].id for _ in range(len(manager._heap))
        ]
        assert drained == [high.id, mid.id, low.id]
        manager.close()

    def test_closed_manager_rejects_submissions(self):
        from repro.service import ServiceClosed

        manager = JobManager()
        manager.close()
        with pytest.raises(ServiceClosed):
            manager.submit(parse_spec(TINY_GEN))


# ---------------------------------------------------------------------------
# HTTP error taxonomy
# ---------------------------------------------------------------------------


class TestHttpErrors:
    def test_malformed_requests_get_400(self):
        with service_for("inprocess", start_runner=False) as service:
            status, _, text = _request(service, "POST", "/v1/jobs", b"{nope")
            assert status == 400 and "not valid JSON" in text
            status, _, text = _request(service, "POST", "/v1/jobs", {"kind": "x"})
            assert status == 400 and "'kind' must be one of" in text
            status, _, text = _request(
                service, "POST", "/v1/jobs", {**TINY_GEN, "bogus_field": 1}
            )
            assert status == 400 and "unknown spec field" in text
            status, _, text = _request(
                service, "POST", "/v1/jobs", {"kind": "generate", "circuit": "nope"}
            )
            assert status == 400 and "names no benchmark circuit" in text

    def test_unknown_job_and_path_get_404(self):
        with service_for("inprocess", start_runner=False) as service:
            for path in ("/v1/jobs/j999", "/v1/jobs/j999/events", "/v1/jobs/j999/result"):
                status, _, text = _request(service, "GET", path)
                assert status == 404, (path, text)
            status, _, text = _request(service, "GET", "/v2/nothing")
            assert status == 404 and "no such endpoint" in text

    def test_wrong_method_gets_405_with_allow(self):
        with service_for("inprocess", start_runner=False) as service:
            status, headers, _ = _request(service, "PUT", "/v1/jobs")
            assert status == 405
            assert headers["Allow"] == "POST"

    def test_result_before_completion_gets_409(self):
        with service_for("inprocess", start_runner=False) as service:
            doc = _submit(service, TINY_GEN)
            status, _, text = _request(
                service, "GET", f"/v1/jobs/{doc['id']}/result"
            )
            assert status == 409
            assert f"job {doc['id']} is queued; result not ready" in text

    def test_failed_job_result_gets_410(self, monkeypatch):
        def boom(spec, executor=None, progress=None):
            raise RuntimeError("injected campaign failure")

        monkeypatch.setattr("repro.service.campaigns.run_campaign", boom)
        with service_for("inprocess") as service:
            doc = _submit(service, TINY_GEN)
            final = _wait_done(service, doc["id"])
            assert final["state"] == "failed"
            assert final["error"] == {
                "kind": "error",
                "message": "RuntimeError: injected campaign failure",
            }
            status, _, text = _request(
                service, "GET", f"/v1/jobs/{doc['id']}/result"
            )
            assert status == 410
            assert f"job {doc['id']} failed; no result was produced" in text

    def test_unparseable_http_gets_400(self):
        import socket

        with service_for("inprocess", start_runner=False) as service:
            host, port = service.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"NOT AN HTTP LINE\r\n\r\n")
                reply = sock.recv(4096)
            assert reply.startswith(b"HTTP/1.1 400 ")


# ---------------------------------------------------------------------------
# Chaos: worker killed mid-job
# ---------------------------------------------------------------------------


class TestChaos:
    def test_worker_crash_mid_job_still_completes_clean(self, tiny_table_reference):
        # One remote worker self-destructs on its first table row; the
        # supervised fleet requeues the task onto the surviving seat and
        # the retry budget absorbs the crash -- the job must land "done"
        # with zero degraded rows and the byte-identical table.
        spec = f"runner.task:table4.3/{TINY_TABLE['targets'][0]}:crash_once"
        with service_for(
            "remote", extra_env={faultpoints.ENV_VAR: spec}
        ) as service:
            doc = _submit(service, TINY_TABLE)
            final = _wait_done(service, doc["id"])
            assert final["state"] == "done"
            assert final["failures"] == []
            status, _, text = _request(
                service, "GET", f"/v1/jobs/{doc['id']}/result"
            )
            assert status == 200
            assert text == tiny_table_reference


# ---------------------------------------------------------------------------
# Experiment-database parity with the CLI
# ---------------------------------------------------------------------------

#: ``db show`` fields that legitimately differ between a CLI run and a
#: service run of the same campaign (identity, wall clock, provenance).
VOLATILE_SHOW_FIELDS = ("id", "started_utc", "finished_utc", "elapsed_s", "argv")


def _masked_show(capsys, db_path):
    from repro import cli

    assert cli.main(["db", "show", "--db", str(db_path)]) == 0
    out = capsys.readouterr().out
    kept = [
        line
        for line in out.splitlines()
        if not line.startswith(VOLATILE_SHOW_FIELDS)
    ]
    return "\n".join(kept), out


class TestExpdbParity:
    def test_db_show_renders_service_run_like_cli_run(self, tmp_path, capsys):
        from repro import cli

        cli_db = tmp_path / "cli.db"
        service_db = tmp_path / "service.db"
        assert (
            cli.main(
                [
                    "generate", "s27", "--length", "60",
                    "--time-limit", "5", "--db", str(cli_db),
                ]
            )
            == 0
        )
        capsys.readouterr()  # drop the generate output before comparing shows
        os.environ.pop("REPRO_DB", None)
        os.environ.pop("REPRO_DB_RUN", None)
        expdb.reset()
        with service_for("inprocess", db_path=str(service_db)) as service:
            doc = _submit(service, TINY_GEN)
            final = _wait_done(service, doc["id"])
            assert final["state"] == "done"
        cli_masked, _ = _masked_show(capsys, cli_db)
        service_masked, service_full = _masked_show(capsys, service_db)
        # Identical kind/label/status/exit_code/fingerprint/code_hash/
        # kernel/executor and row payloads: the only differences are the
        # masked identity/wall-clock fields and the argv provenance.
        assert service_masked == cli_masked
        assert f'{"argv":13s} ["service:{doc["id"]}"]' in service_full
        with expdb.ExperimentDB(service_db) as db:
            run = db.run(db.latest_run_id())
        assert run["kind"] == "generate" and run["label"] == "s27"
        assert run["status"] == "ok" and run["exit_code"] == 0
        assert run["fingerprint"]

    def test_cached_job_is_recorded_with_provenance(self, tmp_path):
        service_db = tmp_path / "service.db"
        with service_for("inprocess", db_path=str(service_db)) as service:
            first = _submit(service, TINY_GEN)
            _wait_done(service, first["id"])
            again = _submit(service, TINY_GEN)
            assert again["cached"] is True
        with expdb.ExperimentDB(service_db) as db:
            runs = db.runs()
        assert len(runs) == 2
        by_argv = {tuple(json.loads(r["argv"])) for r in runs}
        assert (f"service:{first['id']}",) in by_argv
        assert (f"service:{again['id']}", "cached") in by_argv

    def test_stats_db_renders_a_service_run_report(self, tmp_path, capsys):
        from repro import cli

        service_db = tmp_path / "service.db"
        obs.enable()
        with service_for("inprocess", db_path=str(service_db)) as service:
            doc = _submit(service, TINY_GEN)
            _wait_done(service, doc["id"])
        assert cli.main(["stats", "--db", str(service_db)]) == 0
        out = capsys.readouterr().out
        assert "generate s27" in out
        assert "campaign service" in out  # service.* metrics section


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class TestObservability:
    def test_service_metrics_land_in_their_report_section(self):
        obs.enable()
        with service_for("inprocess") as service:
            doc = _submit(service, TINY_GEN)
            _wait_done(service, doc["id"])
            _submit(service, TINY_GEN)  # memo hit
        counters = obs.registry().counters
        assert counters["service.jobs_submitted"] == 2
        assert counters["service.jobs_completed"] == 2
        assert counters["service.cache_hits"] == 1
        assert counters["service.http_requests"] >= 3
        report = obs.render_report(obs.registry())
        assert "campaign service" in report
        assert "jobs_submitted" in report

    def test_stats_endpoint_reports_counters_and_metrics(self):
        obs.enable()
        with service_for("inprocess") as service:
            doc = _submit(service, TINY_GEN)
            _wait_done(service, doc["id"])
            status, _, text = _request(service, "GET", "/v1/stats")
            assert status == 200
            stats = json.loads(text)
            assert stats["counters"]["jobs_submitted"] == 1
            assert stats["jobs"] == {"done": 1}
            assert stats["metrics"]["counters"]["service.jobs_submitted"] == 1

    def test_health_endpoint(self):
        with service_for("inprocess", start_runner=False) as service:
            status, _, text = _request(service, "GET", "/v1/health")
            assert status == 200
            health = json.loads(text)
            assert health["status"] == "ok"
            assert health["executor"] == "inprocess"
            assert health["queue_depth"] == 0
