"""Drift test: ``docs/SERVICE.md`` must match a fresh render of the routes."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "gen_service_docs.py"
DOC = REPO_ROOT / "docs" / "SERVICE.md"


def _load_generator():
    spec = importlib.util.spec_from_file_location("gen_service_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_checked_in_service_doc_is_current():
    """A route change without `python scripts/gen_service_docs.py` fails here."""
    gen = _load_generator()
    assert DOC.exists(), f"missing {DOC}; run python {SCRIPT}"
    assert DOC.read_text() == gen.render(), (
        "docs/SERVICE.md is stale: regenerate with python scripts/gen_service_docs.py"
    )


def test_render_is_deterministic():
    gen = _load_generator()
    assert gen.render() == gen.render()


def test_every_route_is_documented():
    from repro.service.app import ROUTES

    gen = _load_generator()
    doc = gen.render()
    assert ROUTES, "no routes discovered"
    for route in ROUTES:
        assert f"## `{route.method} {route.path}`" in doc


def test_every_error_code_is_documented():
    """Each route's error table lists every registered status code."""
    from repro.service.app import ROUTES

    doc = DOC.read_text()
    for route in ROUTES:
        for status, reason in route.errors.items():
            assert f"| `{status}` |" in doc, (
                f"error {status} of {route.method} {route.path} missing "
                "from docs/SERVICE.md"
            )


def test_route_registry_matches_dispatch():
    """Every registered route has a handler; no orphan handlers exist."""
    from repro.service.app import ROUTES, CampaignService

    for route in ROUTES:
        assert hasattr(CampaignService, f"_handle_{route.name}"), (
            f"route {route.name!r} has no CampaignService._handle_{route.name}"
        )
    registered = {f"_handle_{route.name}" for route in ROUTES}
    orphans = [
        name
        for name in vars(CampaignService)
        if name.startswith("_handle_") and name not in registered
    ]
    assert not orphans, f"handlers missing from ROUTES: {orphans}"


def test_check_mode_detects_drift(tmp_path, capsys):
    gen = _load_generator()
    original = gen.OUTPUT
    try:
        gen.OUTPUT = tmp_path / "SERVICE.md"
        assert gen.main(["--check"]) == 1  # missing file counts as stale
        assert gen.main([]) == 0  # regenerate
        assert gen.main(["--check"]) == 0
        gen.OUTPUT.write_text("tampered")
        assert gen.main(["--check"]) == 1
    finally:
        gen.OUTPUT = original
