"""Tests for the pattern-of-signal-transitions extension ([90])."""

import random

import pytest

from repro.circuits.benchmarks import get_circuit
from repro.core.signal_patterns import (
    FunctionalPatternBank,
    admissible_prefix_length,
    transition_pattern,
)


@pytest.fixture(scope="module")
def bank_setup():
    c = get_circuit("s298")
    rng = random.Random(0)
    seqs = [
        [[rng.randint(0, 1) for _ in c.inputs] for _ in range(30)] for _ in range(3)
    ]
    bank = FunctionalPatternBank.collect(c, [0] * 14, seqs)
    return c, seqs, bank


class TestTransitionPattern:
    def test_empty_when_no_change(self):
        assert transition_pattern({"a": 1}, {"a": 1}) == frozenset()

    def test_direction_recorded(self):
        p = transition_pattern({"a": 0, "b": 1}, {"a": 1, "b": 0})
        assert ("a", True) in p
        assert ("b", False) in p


class TestBank:
    def test_functional_patterns_admitted(self, bank_setup):
        """Every pattern from the collection sequences is admissible."""
        c, seqs, bank = bank_setup
        from repro.logic.simulator import simulate_sequence

        res = simulate_sequence(c, [0] * 14, seqs[0])
        for prev, cur in zip(res.line_values, res.line_values[1:]):
            assert bank.admits(transition_pattern(prev, cur))

    def test_novel_transition_rejected(self, bank_setup):
        c, _, bank = bank_setup
        # A pattern toggling every line in both directions at once cannot
        # be a subset of any real single-cycle pattern.
        impossible = frozenset(
            (line, d) for line in c.lines for d in (True, False)
        )
        assert not bank.admits(impossible)

    def test_subset_of_functional_admitted(self, bank_setup):
        _, _, bank = bank_setup
        big = max(bank.patterns, key=len)
        some = frozenset(list(big)[: max(1, len(big) // 2)])
        assert bank.admits(some)

    def test_maximal_filter(self, bank_setup):
        _, _, bank = bank_setup
        for i, p in enumerate(bank.patterns):
            for j, q in enumerate(bank.patterns):
                if i != j:
                    assert not (p < q)


class TestPrefix:
    def test_prefix_even(self, bank_setup):
        c, _, bank = bank_setup
        rng = random.Random(7)
        seq = [[rng.randint(0, 1) for _ in c.inputs] for _ in range(20)]
        length = admissible_prefix_length(c, [0] * 14, seq, bank)
        assert length % 2 == 0
        assert 0 <= length <= 20

    def test_collection_sequence_fully_admissible(self, bank_setup):
        c, seqs, bank = bank_setup
        length = admissible_prefix_length(c, [0] * 14, seqs[0], bank)
        assert length == len(seqs[0])
