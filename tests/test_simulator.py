"""Tests for the scalar three-valued simulator."""

import pytest

from repro.circuits.benchmarks import get_circuit
from repro.circuits.netlist import Circuit
from repro.logic.patterns import BroadsideTest, Pattern, pattern_values, values_to_pattern
from repro.logic.simulator import (
    extract_tests_from_sequence,
    make_broadside_test,
    next_state,
    output_values,
    simulate_broadside,
    simulate_comb,
    simulate_pattern,
    simulate_sequence,
    verify_broadside,
)
from repro.logic.values import ONE, X, ZERO


def toggler():
    """1-flop circuit: q toggles when en=1 (q' = q XOR en)."""
    c = Circuit(name="toggler")
    c.add_input("en")
    c.add_gate("nxt", "XOR", ["q", "en"])
    c.add_dff(q="q", d="nxt")
    c.add_output("nxt")
    c.validate()
    return c


class TestComb:
    def test_missing_inputs_are_x(self):
        c = get_circuit("s27")
        values = simulate_comb(c, {})
        assert all(values[pi] == X for pi in c.inputs)

    def test_known_values_s27(self):
        c = get_circuit("s27")
        values = simulate_comb(
            c, {"G0": 0, "G1": 0, "G2": 0, "G3": 0, "G5": 0, "G6": 0, "G7": 0}
        )
        # G14 = NOT(G0) = 1; G8 = AND(G14, G6) = 0; G12 = NOR(G1, G7) = 1
        assert values["G14"] == ONE
        assert values["G8"] == ZERO
        assert values["G12"] == ONE
        assert values["G11"] in (ZERO, ONE)

    def test_x_propagates(self):
        c = get_circuit("s27")
        values = simulate_comb(c, {"G0": 1})
        assert values["G14"] == ZERO  # NOT(1)
        assert values["G8"] == ZERO  # AND(0, X)


class TestSequence:
    def test_toggler_states(self):
        c = toggler()
        res = simulate_sequence(c, [0], [[1], [1], [0], [1]])
        assert [s[0] for s in res.states] == [0, 1, 0, 0, 1]

    def test_initial_state_size_checked(self):
        c = toggler()
        with pytest.raises(ValueError):
            simulate_sequence(c, [0, 1], [[1]])

    def test_switching_cycle0_undefined(self):
        c = toggler()
        res = simulate_sequence(c, [0], [[1], [1]])
        assert res.switching[0] == 0.0

    def test_switching_hand_computed(self):
        c = toggler()
        # cycle0: en=1, q=0, nxt=1.  cycle1: en=1 (steady), q=1, nxt=0.
        # 2 of 3 lines change -> 66.7%.
        res = simulate_sequence(c, [0], [[1], [1]])
        assert res.switching[1] == pytest.approx(200.0 / 3.0)

    def test_switching_no_change(self):
        c = toggler()
        res = simulate_sequence(c, [0], [[0], [0]])
        assert res.switching[1] == pytest.approx(0.0)

    def test_keep_line_values_flag(self):
        c = toggler()
        assert simulate_sequence(c, [0], [[1]], keep_line_values=False).line_values == []
        assert len(simulate_sequence(c, [0], [[1]]).line_values) == 1


class TestBroadside:
    def test_make_broadside_derives_s2(self):
        c = toggler()
        t = make_broadside_test(c, [0], [1], [1])
        assert t.s2 == (1,)
        assert verify_broadside(c, t)

    def test_verify_rejects_wrong_s2(self):
        c = toggler()
        bad = BroadsideTest(s1=(0,), v1=(1,), s2=(0,), v2=(1,))
        assert not verify_broadside(c, bad)

    def test_verify_accepts_x(self):
        c = toggler()
        bad = BroadsideTest(s1=(0,), v1=(1,), s2=(X,), v2=(1,))
        assert verify_broadside(c, bad)

    def test_simulate_broadside_frames(self):
        c = toggler()
        t = make_broadside_test(c, [0], [1], [0])
        f1, f2 = simulate_broadside(c, t)
        assert f1["nxt"] == 1
        assert f2["q"] == 1
        assert f2["nxt"] == 1  # XOR(1, 0)

    def test_extract_tests_spacing(self):
        c = toggler()
        seq = [[1]] * 8
        res = simulate_sequence(c, [0], seq)
        tests = extract_tests_from_sequence(c, res, seq)
        assert len(tests) == 4
        assert [t.source_cycle for t in tests] == [0, 2, 4, 6]
        for t in tests:
            assert verify_broadside(c, t)

    def test_extracted_tests_chain_states(self):
        c = toggler()
        seq = [[1], [0], [1], [1]]
        res = simulate_sequence(c, [0], seq)
        tests = extract_tests_from_sequence(c, res, seq)
        assert tests[0].s1 == tuple(res.states[0])
        assert tests[1].s1 == tuple(res.states[2])


class TestPatterns:
    def test_pattern_values_round_trip(self):
        c = get_circuit("s27")
        p = Pattern(state=(0, 1, 0), pi=(1, 0, 1, 1))
        values = pattern_values(c, p)
        assert values["G0"] == 1 and values["G5"] == 0
        assert values_to_pattern(c, values) == p

    def test_str(self):
        t = BroadsideTest(s1=(0,), v1=(1,), s2=(1,), v2=(0,))
        assert str(t) == "<0, 1, 1, 0>"
        assert str(t.first) == "<0, 1>"

    def test_output_values(self):
        c = toggler()
        values = simulate_pattern(c, Pattern(state=(1,), pi=(0,)))
        assert output_values(c, values) == (1,)
        assert next_state(c, values) == (1,)
