"""Tests for the static timing analysis engine with case analysis."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.benchmarks import get_circuit
from repro.circuits.library import DEFAULT_LIBRARY, UNIT_DELAY_NS
from repro.experiments.figures import fig_1_4_circuit
from repro.faults.models import FALL, Path, PathDelayFault, RISE
from repro.sta.engine import (
    CASE_FALLING,
    CASE_ONE,
    CASE_RISING,
    CASE_ZERO,
    CaseAnalysis,
    StaEngine,
)
from repro.logic.values import X


PATH_ACEG = PathDelayFault(Path(lines=("a", "c", "e", "g")), RISE)


class TestCasePropagation:
    def test_constants_propagate(self):
        c = fig_1_4_circuit()
        sta = StaEngine(c)
        pairs = sta.propagate_case(CaseAnalysis(pins={"a": CASE_ONE, "b": CASE_ZERO}))
        assert pairs["c"] == (1, 1)  # OR(1, 0)

    def test_rising_constant(self):
        c = fig_1_4_circuit()
        sta = StaEngine(c)
        pairs = sta.propagate_case(
            CaseAnalysis(pins={"a": CASE_RISING, "b": CASE_ZERO})
        )
        assert pairs["c"] == (0, 1)

    def test_unconstrained_is_x(self):
        c = fig_1_4_circuit()
        sta = StaEngine(c)
        pairs = sta.propagate_case(CaseAnalysis.empty())
        assert pairs["c"] == (X, X)


class TestPathDelay:
    def test_traditional_delay_is_sum_with_margins(self):
        c = fig_1_4_circuit()
        sta = StaEngine(c)
        delay = sta.path_delay(PATH_ACEG)
        # 3 hops, each with 1 unknown side input.
        lib = DEFAULT_LIBRARY
        expect = 0.0
        for line, edge in (("c", "rise"), ("e", "rise"), ("g", "rise")):
            gate = c.gates[line]
            expect += lib.delay(gate.gate_type, len(gate.inputs), edge)
            expect += sta.side_margin  # one unknown side input each
        assert delay == pytest.approx(expect)

    def test_case_analysis_never_increases_delay(self):
        c = fig_1_4_circuit()
        sta = StaEngine(c)
        base = sta.path_delay(PATH_ACEG)
        case = CaseAnalysis(pins={"b": CASE_ZERO, "d": CASE_ONE, "f": CASE_ZERO})
        constrained = sta.path_delay(PATH_ACEG, case=case)
        assert constrained is not None
        assert constrained <= base
        # All side inputs known: margins vanish entirely.
        assert constrained == pytest.approx(base - 3 * sta.side_margin)

    def test_blocking_constant_prunes_path(self):
        c = fig_1_4_circuit()
        sta = StaEngine(c)
        case = CaseAnalysis(pins={"d": CASE_ZERO})  # blocks the AND gate
        assert sta.path_delay(PATH_ACEG, case=case) is None

    def test_incompatible_source_prunes(self):
        c = fig_1_4_circuit()
        sta = StaEngine(c)
        case = CaseAnalysis(pins={"a": CASE_FALLING})
        assert sta.path_delay(PATH_ACEG, case=case) is None

    def test_rise_fall_differ(self):
        c = fig_1_4_circuit()
        sta = StaEngine(c)
        rise = sta.path_delay(PATH_ACEG)
        fall = sta.path_delay(PathDelayFault(PATH_ACEG.path, FALL))
        assert rise != fall  # OR/AND cells have asymmetric edges

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_monotone_under_any_consistent_case(self, data):
        """Adding case constants can only reduce or block a path's delay."""
        c = get_circuit("s298")
        sta = StaEngine(c)
        from repro.paths.enumeration import k_longest_paths

        path = data.draw(st.sampled_from(k_longest_paths(c, 12)))
        fault = PathDelayFault(path=path, direction=data.draw(st.sampled_from([RISE, FALL])))
        base = sta.path_delay(fault)
        pins = {}
        for line in data.draw(
            st.lists(st.sampled_from(c.comb_input_lines), max_size=5, unique=True)
        ):
            pins[line] = data.draw(
                st.sampled_from([CASE_ZERO, CASE_ONE, CASE_RISING, CASE_FALLING])
            )
        constrained = sta.path_delay(fault, case=CaseAnalysis(pins=pins))
        if base is None:
            assert constrained is None
        elif constrained is not None:
            assert constrained <= base + 1e-12


class TestRankedReport:
    def test_sorted_descending(self):
        c = get_circuit("s298")
        sta = StaEngine(c)
        ranked = sta.ranked_faults(10)
        delays = [d for _, d in ranked]
        assert delays == sorted(delays, reverse=True)
        assert len(ranked) > 0

    def test_faults_at_least_threshold(self):
        c = get_circuit("s298")
        sta = StaEngine(c)
        ranked = sta.ranked_faults(10)
        threshold = ranked[4][1]
        subset = sta.faults_at_least(threshold, CaseAnalysis.empty(), scan=10)
        assert all(d >= threshold - 1e-12 for _, d in subset)

    def test_constant_lines_disable_arcs(self):
        c = fig_1_4_circuit()
        sta = StaEngine(c)
        # d = 0 makes e constant: no ranked fault may route through e.
        ranked = sta.ranked_faults(20, case=CaseAnalysis(pins={"d": CASE_ZERO}))
        for fault, _ in ranked:
            assert "e" not in fault.path.lines


class TestLibrary:
    def test_unit_delay_is_inverter_rise(self):
        from repro.circuits.gates import GateType

        assert DEFAULT_LIBRARY.delay(GateType.NOT, 1, "rise") == UNIT_DELAY_NS

    def test_fanin_penalty(self):
        from repro.circuits.gates import GateType

        lib = DEFAULT_LIBRARY
        assert lib.delay(GateType.AND, 4, "rise") > lib.delay(GateType.AND, 2, "rise")

    def test_circuit_area_positive(self):
        c = get_circuit("s298")
        assert DEFAULT_LIBRARY.circuit_area(c) > 0


class TestRankedExactness:
    def test_ranked_matches_bruteforce_on_s27(self):
        """ranked_faults reproduces brute-force delay ordering exactly."""
        from repro.circuits.benchmarks import get_circuit
        from repro.paths.enumeration import enumerate_paths

        c = get_circuit("s27")
        sta = StaEngine(c)
        brute = []
        for path in enumerate_paths(c):
            for direction in (RISE, FALL):
                fault = PathDelayFault(path=path, direction=direction)
                delay = sta.path_delay(fault)
                if delay is not None:
                    brute.append((fault, delay))
        brute.sort(key=lambda item: -item[1])
        ranked = sta.ranked_faults(len(brute), overscan=8)
        top = min(len(ranked), 10)
        assert [round(d, 9) for _, d in ranked[:top]] == [
            round(d, 9) for _, d in brute[:top]
        ]
