"""Tests for the state-holding DFT (Section 4.5)."""

import pytest

from repro.circuits.benchmarks import get_circuit
from repro.core.builtin_gen import BuiltinGenConfig, BuiltinGenerator
from repro.core.state_holding import (
    select_holding_sets,
    simulate_with_holding,
)
from repro.faults.collapse import collapse_transition
from repro.faults.lists import all_transition_faults
from repro.logic.simulator import simulate_sequence


@pytest.fixture(scope="module")
def s298():
    return get_circuit("s298")


class TestSimulateWithHolding:
    def test_held_bits_frozen_at_hold_cycles(self, s298):
        c = s298
        hold = c.state_lines[:4]
        import random

        rng = random.Random(0)
        seq = [[rng.randint(0, 1) for _ in c.inputs] for _ in range(16)]
        res = simulate_with_holding(c, [0] * 14, seq, hold_set=hold, hold_period_log2=2)
        index = {q: i for i, q in enumerate(c.state_lines)}
        for i in range(0, 16, 4):  # hold cycles
            for q in hold:
                assert res.states[i + 1][index[q]] == res.states[i][index[q]]

    def test_capture_cycles_not_held(self, s298):
        """At non-hold cycles the held flops behave functionally."""
        c = s298
        hold = c.state_lines[:4]
        import random

        rng = random.Random(1)
        seq = [[rng.randint(0, 1) for _ in c.inputs] for _ in range(12)]
        res = simulate_with_holding(c, [0] * 14, seq, hold_set=hold, hold_period_log2=2)
        from repro.logic.simulator import next_state, simulate_comb

        for i in range(12):
            if i % 4 == 0:
                continue
            values = simulate_comb(
                c,
                dict(zip(c.inputs, seq[i]))
                | dict(zip(c.state_lines, res.states[i])),
            )
            assert tuple(res.states[i + 1]) == next_state(c, values)

    def test_h_zero_rejected(self, s298):
        with pytest.raises(ValueError):
            simulate_with_holding(s298, [0] * 14, [[0, 0, 0]], ["q0"], hold_period_log2=0)

    def test_empty_hold_set_is_plain_simulation(self, s298):
        c = s298
        seq = [[1, 0, 1]] * 8
        held = simulate_with_holding(c, [0] * 14, seq, hold_set=[])
        plain = simulate_sequence(c, [0] * 14, seq, keep_line_values=False)
        assert held.states == plain.states

    def test_introduces_unreachable_states(self, s298):
        """Holding steers the circuit off the functional trajectory."""
        c = s298
        import random

        rng = random.Random(2)
        seq = [[rng.randint(0, 1) for _ in c.inputs] for _ in range(40)]
        plain = simulate_sequence(c, [0] * 14, seq, keep_line_values=False)
        held = simulate_with_holding(
            c, [0] * 14, seq, hold_set=c.state_lines[:7], hold_period_log2=2
        )
        assert set(held.states) != set(plain.states)


class TestSetSelection:
    @pytest.fixture(scope="class")
    def remaining(self, s298):
        faults = collapse_transition(s298, all_transition_faults(s298))
        cfg = BuiltinGenConfig(segment_length=100, time_limit=15, rng_seed=4)
        base = BuiltinGenerator(s298, faults, 30.0, config=cfg).run()
        return [f for f in faults if f not in base.detected]

    def test_sets_non_overlapping(self, s298, remaining):
        cfg = BuiltinGenConfig(segment_length=100, time_limit=8, rng_seed=4)
        selection = select_holding_sets(
            s298, remaining, 30.0, tree_height=2, config=cfg
        )
        seen = set()
        for subset in selection.sets:
            assert not (set(subset) & seen)
            seen |= set(subset)
        assert selection.n_bits == len(seen)

    def test_empty_inputs(self, s298):
        selection = select_holding_sets(s298, [], 30.0, tree_height=2)
        assert selection.sets == []

    def test_node_detections_recorded(self, s298, remaining):
        cfg = BuiltinGenConfig(segment_length=100, time_limit=8, rng_seed=4)
        selection = select_holding_sets(
            s298, remaining, 30.0, tree_height=1, config=cfg
        )
        assert (0, 0) in selection.node_detections


class TestHoldingRun:
    def test_improvement_within_bound(self, s298):
        from repro.core.state_holding import run_with_state_holding

        faults = collapse_transition(s298, all_transition_faults(s298))
        cfg = BuiltinGenConfig(segment_length=100, time_limit=12, rng_seed=4)
        base = BuiltinGenerator(s298, faults, 30.0, config=cfg).run()
        fr = [f for f in faults if f not in base.detected]
        holding = run_with_state_holding(
            s298, fr, 30.0, tree_height=2, config=cfg
        )
        # Every newly detected fault was previously undetected.
        assert holding.newly_detected <= set(fr)
        assert holding.peak_swa <= 30.0 + 1e-9
