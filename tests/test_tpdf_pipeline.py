"""Tests for the Chapter 2 TPDF pipeline, incl. exhaustive ground truth."""

import itertools

import pytest

from repro.atpg.tpdf import (
    ABORTED,
    DETECTED,
    SUB_BRANCH_BOUND,
    SUB_FSIM,
    SUB_HEURISTIC,
    SUB_PREPROCESS,
    TpdfPipeline,
    UNDETECTABLE,
    cube_detects,
)
from repro.circuits.benchmarks import get_circuit
from repro.faults.lists import tpdf_list_all_paths
from repro.faults.models import Path, RISE, TransitionPathDelayFault
from repro.faults.pdfsim import tpdf_detection_words
from repro.logic.simulator import make_broadside_test


@pytest.fixture(scope="module")
def s27_report():
    c = get_circuit("s27")
    pipeline = TpdfPipeline(c, heuristic_time_limit=1.0, bnb_time_limit=3.0)
    return c, pipeline.run(tpdf_list_all_paths(c))


@pytest.fixture(scope="module")
def s27_exhaustive_words():
    c = get_circuit("s27")
    tests = [
        make_broadside_test(c, s1, v1, v2)
        for s1 in itertools.product((0, 1), repeat=3)
        for v1 in itertools.product((0, 1), repeat=4)
        for v2 in itertools.product((0, 1), repeat=4)
    ]
    faults = tpdf_list_all_paths(c)
    return tpdf_detection_words(c, faults, tests)


class TestS27GroundTruth:
    def test_no_aborts(self, s27_report):
        _, report = s27_report
        assert report.count(ABORTED) == 0

    def test_classification_matches_exhaustive(
        self, s27_report, s27_exhaustive_words
    ):
        """Every fault's detected/undetectable verdict equals brute force."""
        _, report = s27_report
        for fault, outcome in report.outcomes.items():
            truth = bool(s27_exhaustive_words[fault])
            assert (outcome.status == DETECTED) == truth, fault

    def test_detection_certificates_valid(self, s27_report):
        c, report = s27_report
        for fault, outcome in report.outcomes.items():
            if outcome.status == DETECTED and outcome.test is not None:
                words = tpdf_detection_words(c, [fault], [outcome.test])
                assert words[fault], fault

    def test_subprocedure_accounting(self, s27_report):
        _, report = s27_report
        total_detected = report.count(DETECTED)
        by_sub = (
            report.detected_by(SUB_FSIM)
            + report.detected_by(SUB_HEURISTIC)
            + report.detected_by(SUB_BRANCH_BOUND)
        )
        assert by_sub == total_detected
        assert report.prep_upper_bound >= total_detected

    def test_times_recorded(self, s27_report):
        _, report = s27_report
        assert set(report.sub_times) == {
            SUB_PREPROCESS,
            SUB_FSIM,
            SUB_HEURISTIC,
            SUB_BRANCH_BOUND,
        }
        assert report.total_time > 0


class TestFig21:
    def test_preprocessing_proves_fig_2_1_undetectable(self):
        from repro.experiments.figures import fig_2_1_circuit

        c = fig_2_1_circuit()
        fault = TransitionPathDelayFault(Path(lines=("c", "d", "e")), RISE)
        pipeline = TpdfPipeline(c)
        report = pipeline.run([fault])
        outcome = report.outcomes[fault]
        assert outcome.status == UNDETECTABLE
        assert outcome.sub_procedure == SUB_PREPROCESS


class TestCubeDetects:
    def test_partial_cube_conservative(self):
        from repro.atpg.broadside import BroadsideAtpg
        from repro.faults.models import TransitionFault

        c = get_circuit("s27")
        atpg = BroadsideAtpg(c)
        fault = TransitionFault("G14", RISE)
        # Empty cube: everything X, cannot prove detection.
        assert not cube_detects(atpg, {}, fault)
        run = atpg.generate(fault)
        assert cube_detects(atpg, run.assignments, fault)

    def test_full_cube_exact(self):
        """On fully specified cubes, cube_detects == fault simulation."""
        import random

        from repro.atpg.broadside import BroadsideAtpg
        from repro.faults.fsim import TransitionFaultSimulator
        from repro.faults.lists import all_transition_faults

        c = get_circuit("s27")
        atpg = BroadsideAtpg(c)
        sim = TransitionFaultSimulator(c)
        rng = random.Random(5)
        for _ in range(10):
            cube = {line: rng.randint(0, 1) for line in atpg.model.free_inputs}
            test = atpg.model.to_broadside_test(cube)
            for fault in rng.sample(all_transition_faults(c), 8):
                assert cube_detects(atpg, cube, fault) == sim.detects(test, fault)
