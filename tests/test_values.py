"""Unit and property tests for the three-valued logic system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic import values as V

binary = st.sampled_from([V.ZERO, V.ONE])
ternary = st.sampled_from([V.ZERO, V.ONE, V.X])


class TestBasicOps:
    def test_not_table(self):
        assert V.v_not(V.ZERO) == V.ONE
        assert V.v_not(V.ONE) == V.ZERO
        assert V.v_not(V.X) == V.X

    def test_and_table(self):
        assert V.v_and(V.ZERO, V.X) == V.ZERO
        assert V.v_and(V.X, V.ZERO) == V.ZERO
        assert V.v_and(V.ONE, V.ONE) == V.ONE
        assert V.v_and(V.ONE, V.X) == V.X
        assert V.v_and(V.X, V.X) == V.X

    def test_or_table(self):
        assert V.v_or(V.ONE, V.X) == V.ONE
        assert V.v_or(V.X, V.ONE) == V.ONE
        assert V.v_or(V.ZERO, V.ZERO) == V.ZERO
        assert V.v_or(V.ZERO, V.X) == V.X

    def test_xor_table(self):
        assert V.v_xor(V.ZERO, V.ONE) == V.ONE
        assert V.v_xor(V.ONE, V.ONE) == V.ZERO
        assert V.v_xor(V.X, V.ONE) == V.X
        assert V.v_xor(V.ZERO, V.X) == V.X

    @given(ternary, ternary)
    def test_de_morgan(self, a, b):
        assert V.v_not(V.v_and(a, b)) == V.v_or(V.v_not(a), V.v_not(b))

    @given(ternary, ternary)
    def test_commutativity(self, a, b):
        assert V.v_and(a, b) == V.v_and(b, a)
        assert V.v_or(a, b) == V.v_or(b, a)
        assert V.v_xor(a, b) == V.v_xor(b, a)

    @given(binary, binary)
    def test_binary_agrees_with_python(self, a, b):
        assert V.v_and(a, b) == (a & b)
        assert V.v_or(a, b) == (a | b)
        assert V.v_xor(a, b) == (a ^ b)
        assert V.v_not(a) == (1 - a)

    @given(st.lists(ternary, min_size=1, max_size=6))
    def test_reductions_match_pairwise(self, vals):
        acc_and, acc_or, acc_xor = V.ONE, V.ZERO, V.ZERO
        for v in vals:
            acc_and = V.v_and(acc_and, v)
            acc_or = V.v_or(acc_or, v)
            acc_xor = V.v_xor(acc_xor, v)
        assert V.v_and_all(vals) == acc_and
        assert V.v_or_all(vals) == acc_or
        assert V.v_xor_all(vals) == acc_xor


class TestMergeCompat:
    def test_merge_with_x(self):
        assert V.merge(V.X, V.ONE) == V.ONE
        assert V.merge(V.ZERO, V.X) == V.ZERO
        assert V.merge(V.X, V.X) == V.X

    def test_merge_conflict_raises(self):
        with pytest.raises(ValueError):
            V.merge(V.ZERO, V.ONE)

    @given(ternary, ternary)
    def test_compatible_iff_merge_succeeds(self, a, b):
        if V.compatible(a, b):
            V.merge(a, b)
        else:
            with pytest.raises(ValueError):
                V.merge(a, b)


class TestStrings:
    def test_round_trip(self):
        assert V.str_to_vector("01x") == [V.ZERO, V.ONE, V.X]
        assert V.vector_to_str([V.ZERO, V.ONE, V.X]) == "01x"

    def test_bad_char(self):
        with pytest.raises(ValueError):
            V.from_char("2")

    @given(st.lists(ternary, max_size=16))
    def test_vector_round_trip(self, vals):
        assert V.str_to_vector(V.vector_to_str(vals)) == vals


class TestPairs:
    def test_transitions(self):
        assert V.is_rising((0, 1))
        assert V.is_falling((1, 0))
        assert not V.is_rising((1, 1))
        assert V.has_transition((0, 1))
        assert V.has_transition((1, 0))
        assert not V.has_transition((V.X, 1))

    def test_steady(self):
        assert V.is_steady((1, 1))
        assert V.is_steady((0, 0))
        assert not V.is_steady((0, 1))
        assert not V.is_steady((V.X, V.X))

    def test_pair_to_str(self):
        assert V.pair_to_str((0, 1)) == "0->1"
        assert V.pair_to_str((V.X, 0)) == "x->0"
