"""Tests for the structural Verilog writer."""

import re

import pytest

from repro.circuits.benchmarks import get_circuit
from repro.circuits.verilog import dump, dumps, mangle


class TestMangle:
    def test_clean_names_untouched(self):
        assert mangle("G17") == "G17"
        assert mangle("n_12") == "n_12"

    def test_illegal_chars_replaced(self):
        assert mangle("a@1") == "a_1"
        assert mangle("x-y") == "x_y"

    def test_leading_digit_prefixed(self):
        assert mangle("1abc") == "n_1abc"


class TestDump:
    def test_s27_structure(self):
        c = get_circuit("s27")
        text = dumps(c)
        assert text.startswith("module s27 (")
        assert text.rstrip().endswith("endmodule")
        # One primitive instance per gate.
        for gate in c.topo_gates:
            assert f"g_{gate.name}" in text
        # Flops in one clocked block.
        assert "always @(posedge clk)" in text
        assert "G5 <= G10;" in text

    def test_po_buffers(self):
        c = get_circuit("s27")
        text = dumps(c)
        assert "output G17_po;" in text
        assert "buf b_G17_po (G17_po, G17);" in text

    def test_balanced_module(self):
        text = dumps(get_circuit("s298"))
        assert len(re.findall(r"^module\b", text, re.M)) == 1
        assert len(re.findall(r"^endmodule\b", text, re.M)) == 1
        # No dangling identifiers with illegal characters.
        for token in re.findall(r"[A-Za-z_][\w$]*", text):
            assert "@" not in token

    def test_file_io(self, tmp_path):
        path = tmp_path / "c.v"
        dump(get_circuit("s27"), path)
        assert path.read_text().startswith("module s27")

    def test_duplicate_outputs_deduped(self):
        from repro.circuits.netlist import Circuit

        c = Circuit(name="dup")
        c.add_input("a")
        c.add_gate("n", "NOT", ["a"])
        c.add_output("n")
        c.add_output("n")
        c.validate()
        text = dumps(c)
        assert text.count("output n_po;") == 1

    def test_instance_counts(self):
        c = get_circuit("s298")
        text = dumps(c)
        prims = re.findall(r"^\s{2}(and|nand|or|nor|xor|xnor|not|buf)\s", text, re.M)
        # gates + one buf per distinct PO
        assert len(prims) == c.num_gates + len(set(c.outputs))
